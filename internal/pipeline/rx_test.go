package pipeline

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/isa"
)

// rxOp builds an RX compute: dst ← src1 op mem[src2-base + addr].
func rxOp(pc uint64, dst, src1, base isa.Reg, addr uint64) isa.Instruction {
	return isa.Instruction{
		PC: pc, Class: isa.RX,
		Dst: dst, Src1: src1, Src2: base, Addr: addr,
	}
}

func TestRXHeadBlocksOnMemoryOperand(t *testing.T) {
	// A stream of RX ops to missing lines: each must wait for its
	// memory operand at issue (in-order), unlike pure loads which
	// issue through. RX-heavy missing code is therefore far slower
	// than the same access pattern via non-consumed loads.
	mk := func(class isa.Class) []isa.Instruction {
		ins := make([]isa.Instruction, 60)
		for i := range ins {
			addr := 0x4000_0000 + uint64(i)<<21
			if class == isa.RX {
				ins[i] = rxOp(uint64(0x1000+4*i), isa.Reg(i%8), isa.Reg(i%8), isa.RegNone, addr)
			} else {
				ins[i] = isa.Instruction{
					PC: uint64(0x1000 + 4*i), Class: isa.Load,
					Dst: isa.Reg(i % 8), Src1: isa.RegNone, Src2: isa.RegNone,
					Addr: addr,
				}
			}
		}
		return ins
	}
	run := func(class isa.Class) *Result {
		cfg := idealConfig(10)
		cfg.Hierarchy = cache.MustHierarchy(cache.DefaultHierarchy())
		cfg.NonBlockingCache = true // isolate the issue-side effect
		return mustRun(t, cfg, mk(class))
	}
	loads := run(isa.Load)
	rx := run(isa.RX)
	if rx.RXCount != 60 || loads.LoadCount != 60 {
		t.Fatalf("counts: rx=%d loads=%d", rx.RXCount, loads.LoadCount)
	}
	if rx.Cycles < loads.Cycles*2 {
		t.Errorf("RX stream %d cycles not well above load stream %d", rx.Cycles, loads.Cycles)
	}
	if rx.StallCycles[StallMemory]+rx.StallCycles[StallAgen] == 0 {
		t.Error("RX recorded no memory-side stalls")
	}
}

func TestRXResultForwardsLikeALU(t *testing.T) {
	// Once its operands arrive, an RX result forwards in one cycle: a
	// consumer chain of RX-hit + RR pairs runs without long stalls.
	var ins []isa.Instruction
	for i := 0; i < 200; i++ {
		ins = append(ins,
			rxOp(uint64(0x1000+8*i), 1, 2, isa.RegNone, 0x1000_0000), // always the same hot line
			isa.Instruction{PC: uint64(0x1004 + 8*i), Class: isa.RR,
				Dst: 2, Src1: 1, Src2: isa.RegNone},
		)
	}
	cfg := idealConfig(10)
	cfg.Hierarchy = cache.MustHierarchy(cache.DefaultHierarchy())
	r := mustRun(t, cfg, ins)
	// The serial RX→RR→RX chain costs ≈ the address-path latency per
	// RX (its memory operand re-traverses agen+cache each iteration);
	// the test bounds it to rule out pathological serialization.
	perPair := float64(r.Cycles) / 200
	if perPair > 16 {
		t.Errorf("RX→RR chain costs %.1f cycles per pair at depth 10", perPair)
	}
}

func TestRXSelfBaseNoDeadlock(t *testing.T) {
	// RX r5 ← r5 op mem[r5]: base captured at decode exit must see the
	// prior writer in both modes.
	ins := []isa.Instruction{
		{PC: 0x1000, Class: isa.RR, Dst: 5, Src1: isa.RegNone, Src2: isa.RegNone},
		rxOp(0x1004, 5, 5, 5, 0x1000_0000),
		{PC: 0x1008, Class: isa.RR, Dst: 6, Src1: 5, Src2: isa.RegNone},
	}
	for _, ooo := range []bool{false, true} {
		cfg := idealConfig(10)
		cfg.OutOfOrder = ooo
		r := mustRun(t, cfg, ins)
		if r.Instructions != 3 {
			t.Fatalf("ooo=%v: retired %d of 3", ooo, r.Instructions)
		}
	}
}

func TestRXWorksAtAllDepthsAndModes(t *testing.T) {
	var ins []isa.Instruction
	for i := 0; i < 400; i++ {
		switch i % 3 {
		case 0:
			ins = append(ins, rxOp(uint64(0x1000+4*i), isa.Reg(i%8), isa.Reg((i+1)%8),
				isa.Reg((i+2)%8), 0x1000_0000+uint64(i%64)*64))
		case 1:
			ins = append(ins, isa.Instruction{PC: uint64(0x1000 + 4*i), Class: isa.RR,
				Dst: isa.Reg(i % 8), Src1: isa.Reg((i + 3) % 8), Src2: isa.RegNone})
		default:
			ins = append(ins, isa.Instruction{PC: uint64(0x1000 + 4*i), Class: isa.Store,
				Dst: isa.RegNone, Src1: isa.Reg(i % 8), Src2: isa.Reg((i + 1) % 8),
				Addr: 0x1000_0000 + uint64(i%64)*64})
		}
	}
	for _, depth := range []int{2, 3, 7, 25} {
		for _, ooo := range []bool{false, true} {
			cfg := MustDefaultConfig(depth)
			cfg.OutOfOrder = ooo
			r := mustRun(t, cfg, ins)
			if r.Instructions != 400 {
				t.Fatalf("depth %d ooo %v: retired %d", depth, ooo, r.Instructions)
			}
		}
	}
}
