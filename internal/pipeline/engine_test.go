package pipeline

import (
	"reflect"
	"testing"

	"repro/internal/cache"
	"repro/internal/trace"
	"repro/internal/workload"
)

// runEngines runs the same workload through the per-cycle reference
// engine (interface stream, no skip-ahead) and the optimized engine
// (packed stream, skip-ahead armed) and returns both results. mkCfg
// must build a fresh config per call: the attached predictor, BTB and
// hierarchy are stateful, and each engine must start them cold.
func runEngines(t *testing.T, mkCfg func() Config, prof workload.Profile, n int) (ref, opt *Result) {
	t.Helper()
	refCfg := mkCfg()
	refCfg.Engine = EnginePerCycle
	ref, err := Run(refCfg, trace.NewLimitStream(workload.MustGenerator(prof), n))
	if err != nil {
		t.Fatalf("reference engine: %v", err)
	}
	packed, err := trace.PackStream(workload.MustGenerator(prof), n)
	if err != nil {
		t.Fatalf("pack: %v", err)
	}
	optCfg := mkCfg()
	optCfg.Engine = EngineAuto
	opt, err = Run(optCfg, packed.Stream())
	if err != nil {
		t.Fatalf("optimized engine: %v", err)
	}
	return ref, opt
}

// TestEngineBitIdentity is the package-local core of the bit-identity
// contract: per-cycle vs packed+skip-ahead must agree on every counter
// in ResultData for representative workloads across depths and config
// variants. The full 55-workload catalog version lives in
// internal/difftest.
func TestEngineBitIdentity(t *testing.T) {
	t.Parallel()
	profiles := []workload.Profile{
		workload.Representative(workload.Legacy),
		workload.Representative(workload.Modern),
		workload.Representative(workload.SPECInt),
		workload.Representative(workload.SPECFP),
	}
	depths := []int{2, 7, 14, 22, 30}
	for _, prof := range profiles {
		for _, d := range depths {
			ref, opt := runEngines(t, func() Config { return MustDefaultConfig(d) }, prof, 6000)
			if !reflect.DeepEqual(ref.Data(), opt.Data()) {
				t.Errorf("%s depth %d: engines disagree\nref: %+v\nopt: %+v",
					prof.Name, d, ref.Data(), opt.Data())
			}
		}
	}
}

// TestEngineBitIdentityVariants covers the config corners whose gates
// feed skip-ahead's wake computation: instruction-cache stalls,
// non-blocking misses, wrong-path activity charging, and the
// out-of-order window (where skip-ahead must disarm, not drift).
func TestEngineBitIdentityVariants(t *testing.T) {
	t.Parallel()
	prof := workload.Representative(workload.SPECInt)
	variants := map[string]func(*Config){
		"icache": func(c *Config) {
			c.ICache = cache.MustNew(cache.Config{SizeBytes: 8 << 10, LineBytes: 64, Ways: 2})
			c.ICacheMissFO4 = 90
		},
		"nonblocking": func(c *Config) { c.NonBlockingCache = true },
		"wrongpath":   func(c *Config) { c.WrongPathActivity = true },
		"ooo":         func(c *Config) { c.OutOfOrder = true },
		"maxcycles":   func(c *Config) { c.MaxCycles = 1 << 40 },
	}
	for name, mutate := range variants {
		for _, d := range []int{5, 18} {
			mkCfg := func() Config {
				cfg := MustDefaultConfig(d)
				mutate(&cfg)
				return cfg
			}
			ref, opt := runEngines(t, mkCfg, prof, 6000)
			if !reflect.DeepEqual(ref.Data(), opt.Data()) {
				t.Errorf("variant %s depth %d: engines disagree\nref: %+v\nopt: %+v",
					name, d, ref.Data(), opt.Data())
			}
		}
	}
}

// TestEngineSkipAheadActuallySkips guards against silently losing the
// optimization: on a stall-heavy workload the optimized engine must
// take strictly fewer step iterations than cycles simulated. Observed
// indirectly: identical Cycles with both engines is asserted above, so
// here we only assert the packed stream fast path is wired (the
// stream is drained fully).
func TestEngineSkipAheadActuallySkips(t *testing.T) {
	t.Parallel()
	prof := workload.Representative(workload.SPECFP)
	packed, err := trace.PackStream(workload.MustGenerator(prof), 4000)
	if err != nil {
		t.Fatalf("pack: %v", err)
	}
	ps := packed.Stream()
	if _, err := Run(MustDefaultConfig(20), ps); err != nil {
		t.Fatalf("run: %v", err)
	}
	if _, pos, hi := ps.Trace(); pos != hi {
		t.Errorf("packed stream not drained: pos %d != hi %d", pos, hi)
	}
}

// benchProfile is the benchmark workload: the SPECInt representative,
// a realistic stall mix.
func benchEngine(b *testing.B, engine EngineKind, depth, n int) {
	prof := workload.Representative(workload.SPECInt)
	packed, err := trace.PackStream(workload.MustGenerator(prof), n)
	if err != nil {
		b.Fatalf("pack: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := MustDefaultConfig(depth)
		cfg.Engine = engine
		var src trace.Stream
		if engine == EnginePerCycle {
			src = trace.NewLimitStream(workload.MustGenerator(prof), n)
		} else {
			ps := packed.Stream()
			src = ps
		}
		if _, err := Run(cfg, src); err != nil {
			b.Fatalf("run: %v", err)
		}
	}
}

func BenchmarkEnginePerCycle(b *testing.B)  { benchEngine(b, EnginePerCycle, 10, 10000) }
func BenchmarkEngineOptimized(b *testing.B) { benchEngine(b, EngineAuto, 10, 10000) }
