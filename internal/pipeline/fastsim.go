package pipeline

import (
	"errors"
	"fmt"
	"math/bits"

	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/trace"
)

// The fused packed-trace hot loop.
//
// When the in-order model runs from a packed trace with skip-ahead
// armed (no tracer, no invariants, no sampling — nothing observes
// individual cycles), the engine never needs isa.Instruction values at
// all: every stage reads the packed struct-of-arrays columns directly
// by sequence number. Fetch stops materializing records into the
// window (w.in stays nil on this path), the per-stage method calls and
// telemetry branches of step() collapse into one straight-line cycle
// body, and the constant-per-configuration quantities (issue widths,
// transit times, the FO4→cycle latency conversions) hoist out of the
// loop. The cycle-by-cycle decision sequence is the per-cycle engine's,
// statement for statement — results are bit-identical by construction,
// and the difftest engine bit-identity tier checks that end to end.
//
// Slot-faithful reads: the shared helpers (writerReady, depWake and
// the stall classifiers) historically read the class of a window SLOT,
// whose occupant may be a younger instruction after slot reuse. The
// fast path preserves those exact semantics by translating slot →
// current occupant's sequence (w.seq[i]) → packed class column; see
// slotClass.

// runFast drives the run loop over the packed columns. Preconditions
// (established in Run): s.psrc != nil, s.skip (hence in-order, no
// tracer, no invariants, no sampling).
func (s *sim) runFast() error {
	t, pos, hi := s.psrc.Trace()
	s.fc = t.Columns(pos)
	s.fast = true
	total := uint64(hi - pos)

	var (
		w   = &s.w
		res = &s.res

		cls   = s.fc.Class
		flg   = s.fc.Flags
		base  = s.fc.Base
		pcs   = s.fc.PC
		addrs = s.fc.Addr
		tgts  = s.fc.Target

		width    = s.cfg.Width
		ports    = s.cfg.CachePorts
		bwidth   = s.cfg.BranchWidth
		agenW    = s.cfg.AgenWidth
		execQCap = s.cfg.ExecQCap
		decT     = s.decTransit
		agenT    = s.agenTransit
		cacheT   = s.cacheT
		hier     = s.cfg.Hierarchy
		icache   = s.cfg.ICache
		pred     = s.cfg.Predictor
		btb      = s.cfg.BTB
		nonBlock = s.cfg.NonBlockingCache
		redirect = s.cfg.RedirectBubble
		btbBub   = uint64(s.cfg.BTBMissBubbles)
		maxCyc   = s.cfg.MaxCycles
		wrong    = s.cfg.WrongPathActivity
		wnum     = w.num

		// FO4→cycle conversions are pure functions of the configuration;
		// precompute the three latencies Access/ICache can report.
		iMissCycles = s.cfg.LatencyCycles(s.cfg.ICacheMissFO4)
		l2Cycles    uint64
		memCycles   uint64
	)
	if hier != nil {
		hcfg := hier.Config()
		l2Cycles = s.cfg.LatencyCycles(hcfg.L2LatencyFO4)
		memCycles = s.cfg.LatencyCycles(hcfg.MemLatencyFO4)
	}

	for {
		if s.traceDone && s.retired == s.next {
			break
		}
		s.cycle++
		cyc := s.cycle
		if maxCyc > 0 && cyc > maxCyc {
			s.psrc.Skip(int(s.next))
			return fmt.Errorf("pipeline: exceeded MaxCycles=%d", maxCyc)
		}
		if cyc-s.lastProgress > watchdogCycles {
			s.psrc.Skip(int(s.next))
			return errors.New("pipeline: no forward progress (engine deadlock)")
		}

		var active uint32
		moved := false
		wasDone := s.traceDone

		// Resolve a pending mispredicted branch.
		if s.havePending && w.complete[w.idx(s.pendingBranch)] < cyc {
			s.havePending = false
		}

		// Retire.
		if s.retired < s.decoded {
			retiredNow := 0
			for s.retired < s.decoded && retiredNow < width {
				i := w.idx(s.retired)
				if w.issuedAt[i] == never || w.complete[i] >= cyc {
					break
				}
				s.retired++
				retiredNow++
				res.Instructions++
				res.UnitOps[UnitRetire]++
				s.lastProgress = cyc
			}
			if retiredNow > 0 {
				active |= 1 << UnitRetire
				moved = true
			}
		}

		// Issue (strictly in order), then the cycle-budget accounting.
		issued, memIssued, brIssued := 0, 0, 0
		var cause StallCause
		blocked := false
		for issued < width && s.issued < s.decoded {
			seq := s.issued
			c := isa.Class(cls[seq])
			hasMem := flg[seq]&trace.FlagHasMem != 0
			if hasMem && memIssued >= ports {
				break
			}
			if c == isa.Branch && brIssued >= bwidth {
				break
			}
			i := w.idx(seq)
			if cc, ok := s.blockCauseFast(seq, i, c); ok {
				cause, blocked = cc, true
				break
			}
			s.issueFast(seq, i, c)
			s.issued++
			s.inExecQ--
			issued++
			if hasMem {
				memIssued++
			}
			if c == isa.Branch {
				brIssued++
			}
			if c == isa.FP {
				res.UnitOps[UnitFPU]++
			} else {
				res.UnitOps[UnitExec]++
			}
			active |= 1 << UnitExecQ
			moved = true
		}
		if issued > 0 {
			res.IssueCycles++
			res.IssueHist[issued]++
			res.CycleBudget[BudgetUsefulIssue]++
			s.prevWasStall = false
		} else {
			res.IssueHist[0]++
			drained := false
			if !blocked {
				if s.next == s.retired && s.traceDone {
					res.CycleBudget[BudgetDrain]++
					s.prevWasStall = false
					drained = true
				} else if s.havePending {
					cause = StallBranch
				} else {
					cause = StallFrontend
				}
			}
			if !drained {
				bucket := budgetForStall(cause, cyc < s.iBusyUntil)
				res.CycleBudget[bucket]++
				s.lastBucket = bucket
				res.StallCycles[cause]++
				if !s.prevWasStall || s.prevStall != cause {
					switch cause {
					case StallDependency:
						res.Hazards.DepEpisodes++
					case StallFP:
						res.Hazards.FPEpisodes++
					case StallAgen:
						res.Hazards.AgenEpisodes++
					}
				}
				s.prevWasStall = true
				s.prevStall = cause
			}
		}

		// Cache exit.
		if s.cachePipe.size > 0 {
			for p := 0; p < ports && s.cachePipe.size > 0; p++ {
				if cyc < s.cacheBusyUntil {
					break
				}
				if cyc-s.cachePipe.headAt() < cacheT {
					break
				}
				seq, _ := s.cachePipe.pop()
				i := w.idx(seq)
				c := isa.Class(cls[seq])
				active |= 1 << UnitCache
				moved = true
				res.UnitOps[UnitCache]++

				level := cache.L1
				if hier != nil {
					level, _ = hier.Access(addrs[seq])
				}
				extra := uint64(0)
				if level != cache.L1 {
					res.L1Misses++
					if level == cache.L2 {
						extra = l2Cycles
					} else {
						extra = memCycles
					}
				}
				if c != isa.Store {
					if c == isa.Load {
						res.LoadCount++
					} else {
						res.RXCount++
					}
					w.dataReady[i] = cyc + extra
					if extra > 0 {
						if level == cache.L2 {
							res.Hazards.LoadL2Hits++
						} else {
							res.Hazards.LoadMemAccesses++
							if !nonBlock {
								s.cacheBusyUntil = cyc + extra
							}
						}
					}
				} else {
					res.StoreCount++
					w.dataReady[i] = cyc
				}
				if w.issuedAt[i] != never {
					w.complete[i] = max(w.issuedAt[i]+intLat, w.dataReady[i])
				}
				if c == isa.Load {
					d := s.fc.Dst[seq]
					if s.haveWriter[d] && s.lastWriter[d] == seq {
						s.regReady[d] = w.dataReady[i]
					}
				}
			}
		}

		// Agen advance.
		if s.agenPipe.size > 0 {
			for mv := 0; mv < agenW && s.agenPipe.size > 0; mv++ {
				if cyc-s.agenPipe.headAt() < agenT {
					break
				}
				if s.cachePipe.full() {
					break
				}
				seq, _ := s.agenPipe.pop()
				s.cachePipe.push(seq, cyc)
				active |= 1 << UnitAgen
				moved = true
				res.UnitOps[UnitAgen]++
			}
		}

		// Agen queue.
		if s.agenQ.size > 0 {
			for mv := 0; mv < agenW && s.agenQ.size > 0; mv++ {
				seq := s.agenQ.headSeq()
				i := w.idx(seq)
				if w.wflags[i]&wHasBase != 0 {
					if rt := s.writerReady(w.baseWriter[i]); rt == never || rt > cyc {
						break
					}
				}
				if s.agenPipe.full() {
					break
				}
				s.agenQ.pop()
				s.agenPipe.push(seq, cyc)
				active |= 1 << UnitAgenQ
				moved = true
				res.UnitOps[UnitAgenQ]++
			}
		}

		// Decode exit (including the in-order slice of rename: base-
		// producer capture and the decode-time writer table).
		if s.decodePipe.size > 0 {
			for mv := 0; mv < width && s.decodePipe.size > 0; mv++ {
				if cyc-s.decodePipe.headAt() < decT {
					break
				}
				if s.inExecQ >= execQCap {
					break
				}
				seq := s.decodePipe.headSeq()
				i := w.idx(seq)
				hasMem := flg[seq]&trace.FlagHasMem != 0
				if hasMem && s.agenQ.full() {
					break
				}
				s.decodePipe.pop()
				if hasMem {
					if b := base[seq]; b != isa.RegNone && s.haveRename[b] {
						w.baseWriter[i] = s.renameTable[b]
						w.wflags[i] |= wHasBase
					}
				}
				if flg[seq]&trace.FlagWritesReg != 0 {
					d := s.fc.Dst[seq]
					s.renameTable[d] = seq
					s.haveRename[d] = true
				}
				if hasMem {
					s.agenQ.push(seq, cyc)
					active |= 1 << UnitAgenQ
				}
				s.decoded++
				s.inExecQ++
				res.UnitOps[UnitDecode]++
				res.UnitOps[UnitExecQ]++
				active |= 1 << UnitExecQ
				moved = true
			}
		}

		// Fetch.
		if !s.havePending && !s.traceDone && cyc >= s.redirectHoldTo && cyc >= s.iBusyUntil {
			fetched := 0
			for fetched < width {
				if s.next-s.retired >= wnum {
					break
				}
				if s.decodePipe.full() {
					break
				}
				seq := s.next
				if seq >= total {
					s.traceDone = true
					break
				}
				if icache != nil {
					line := pcs[seq] &^ 63
					if line != s.lastFetchLine {
						s.lastFetchLine = line
						if !icache.Access(pcs[seq]) {
							res.ICacheMisses++
							s.iBusyUntil = cyc + iMissCycles
						}
					}
				}
				i := w.idx(seq)
				s.next++
				s.lastProgress = cyc
				w.seq[i] = seq
				w.dataReady[i] = never
				w.issuedAt[i] = never
				w.complete[i] = never
				w.wflags[i] = 0
				s.decodePipe.push(seq, cyc)
				fetched++
				res.UnitOps[UnitFetch]++

				if isa.Class(cls[seq]) == isa.Branch {
					res.Branches++
					taken := flg[seq]&trace.FlagTaken != 0
					if taken {
						res.TakenBranches++
					}
					predicted := taken
					if pred != nil {
						predicted = pred.Predict(pcs[seq])
						pred.Update(pcs[seq], taken)
					}
					if predicted == taken {
						res.PredictorCorrect++
						if taken {
							hold := uint64(0)
							if redirect {
								hold = 1
							}
							if btb != nil {
								if _, hit := btb.Lookup(pcs[seq]); !hit {
									res.BTBMisses++
									hold += btbBub
								}
								btb.Update(pcs[seq], tgts[seq])
							}
							if hold > 0 {
								s.redirectHoldTo = cyc + 1 + hold
								break
							}
						}
					} else {
						res.Hazards.BranchMispredicts++
						s.pendingBranch = seq
						s.havePending = true
						break
					}
				}
			}
			if fetched > 0 {
				active |= 1 << UnitFetch
				moved = true
			}
		}

		// Activity accounting (recordActivity, fused).
		if wrong && s.havePending {
			active |= 1<<UnitFetch | 1<<UnitDecode
			res.UnitOps[UnitFetch] += uint64(width)
			res.UnitOps[UnitDecode] += uint64(width)
		}
		if s.decodePipe.size > 0 && cyc-s.decodePipe.lastAt < decT {
			active |= 1 << UnitDecode
		}
		if agenT > 0 && s.agenPipe.size > 0 && cyc-s.agenPipe.lastAt < agenT {
			active |= 1 << UnitAgen
		}
		if s.cachePipe.size > 0 && cyc-s.cachePipe.lastAt < cacheT {
			active |= 1 << UnitCache
		}
		if cyc < s.execActiveUntil {
			active |= 1 << UnitExec
		}
		if cyc < s.fpuBusyUntil {
			active |= 1 << UnitFPU
		}
		s.active = active
		for m := active; m != 0; m &= m - 1 {
			res.UnitActive[bits.TrailingZeros32(m)]++
		}

		if occ := int(s.next - s.retired); occ > res.MaxWindowOccupied {
			res.MaxWindowOccupied = occ
		}
		s.moved = moved
		s.quiet = !moved && s.traceDone == wasDone
		if s.quiet && s.prevWasStall {
			s.skipAhead()
		}
	}
	// Keep the external cursor consistent with the records consumed, for
	// callers that continue iterating the stream after the run.
	s.psrc.Skip(int(s.next))
	return nil
}

// blockCauseFast is blockCause reading the packed columns by sequence
// number instead of the window record copy. The issue head's slot is
// never reused while it is the head (issued < decoded ≤ next), so the
// column reads see exactly the values the window copy would hold.
//
//lint:hotpath per-instruction stall classification on the fused path; must not allocate
func (s *sim) blockCauseFast(seq, i uint64, c isa.Class) (StallCause, bool) {
	switch c {
	case isa.Load:
		return 0, false
	case isa.Store:
		if r := s.fc.Src1[seq]; s.regReady[r] > s.cycle {
			return s.classifyDepFast(r), true
		}
		return 0, false
	case isa.RX:
		if s.w.dataReady[i] == never {
			return StallAgen, true
		}
		if s.w.dataReady[i] > s.cycle {
			return StallMemory, true
		}
		if r := s.fc.Src1[seq]; s.regReady[r] > s.cycle {
			return s.classifyDepFast(r), true
		}
		return 0, false
	}
	if c == isa.FP && s.fpuBusyUntil > s.cycle {
		return StallFP, true
	}
	if r := s.fc.Src1[seq]; r != isa.RegNone && s.regReady[r] > s.cycle {
		return s.classifyDepFast(r), true
	}
	if r := s.fc.Src2[seq]; r != isa.RegNone && s.regReady[r] > s.cycle {
		return s.classifyDepFast(r), true
	}
	return 0, false
}

// classifyDepFast is classifyDep on the fused path: the producer's
// class is read slot-faithfully (the class of whatever currently
// occupies the producer's window slot), preserving the per-cycle
// engine's classification bit for bit even across slot reuse.
//
//lint:hotpath per-operand stall classification on the fused path; must not allocate
func (s *sim) classifyDepFast(r isa.Reg) StallCause {
	if !s.haveWriter[r] {
		return StallDependency
	}
	p := s.w.idx(s.lastWriter[r])
	if isa.Class(s.fc.Class[s.w.seq[p]]) == isa.Load {
		if s.w.dataReady[p] == never {
			return StallAgen
		}
		if s.w.dataReady[p] > s.cycle {
			return StallMemory
		}
	}
	return StallDependency
}

// issueFast is issue reading the packed columns by sequence number.
//
//lint:hotpath per-instruction issue bookkeeping on the fused path; must not allocate
func (s *sim) issueFast(seq, i uint64, c isa.Class) {
	s.w.issuedAt[i] = s.cycle
	switch c {
	case isa.FP:
		lat := uint64(s.fc.FPLat[seq])
		if lat < s.execLat {
			lat = s.execLat
		}
		complete := s.cycle + lat
		s.w.complete[i] = complete
		s.fpuBusyUntil = complete
		d := s.fc.Dst[seq]
		s.regReady[d] = complete
		s.lastWriter[d] = seq
		s.haveWriter[d] = true
	case isa.Load:
		if s.w.dataReady[i] == never {
			s.w.complete[i] = never
		} else {
			s.w.complete[i] = max(s.cycle+intLat, s.w.dataReady[i])
			s.execActiveUntil = max(s.execActiveUntil, s.cycle+intLat)
		}
		d := s.fc.Dst[seq]
		s.regReady[d] = s.w.dataReady[i]
		s.lastWriter[d] = seq
		s.haveWriter[d] = true
	case isa.Store:
		if s.w.dataReady[i] == never {
			s.w.complete[i] = never
		} else {
			s.w.complete[i] = max(s.cycle+intLat, s.w.dataReady[i])
		}
		s.execActiveUntil = max(s.execActiveUntil, s.cycle+intLat)
	case isa.RX:
		complete := s.cycle + intLat
		s.w.complete[i] = complete
		d := s.fc.Dst[seq]
		s.regReady[d] = complete
		s.lastWriter[d] = seq
		s.haveWriter[d] = true
		s.execActiveUntil = max(s.execActiveUntil, complete)
	case isa.Branch:
		complete := s.cycle + s.execLat
		s.w.complete[i] = complete
		s.execActiveUntil = max(s.execActiveUntil, complete)
	default: // RR
		complete := s.cycle + intLat
		s.w.complete[i] = complete
		d := s.fc.Dst[seq]
		s.regReady[d] = complete
		s.lastWriter[d] = seq
		s.haveWriter[d] = true
		s.execActiveUntil = max(s.execActiveUntil, complete)
	}
}

// slotClass returns the instruction class of window slot i's current
// occupant. On the fused path the window holds no record copies, so
// the class comes from the packed column of the occupant's sequence
// number — which is exactly the value w.in[i].Class holds on the
// per-cycle path (including after slot reuse).
//
//lint:hotpath per ready-check class read; must not allocate
func (s *sim) slotClass(i uint64) isa.Class {
	if s.fast {
		return isa.Class(s.fc.Class[s.w.seq[i]])
	}
	return s.w.in[i].Class
}

// headOperands returns the issue head's class and source registers
// from whichever representation the engine is running on.
//
//lint:hotpath issue-head operand read in wake computation; must not allocate
func (s *sim) headOperands(seq, i uint64) (isa.Class, isa.Reg, isa.Reg) {
	if s.fast {
		return isa.Class(s.fc.Class[seq]), s.fc.Src1[seq], s.fc.Src2[seq]
	}
	in := &s.w.in[i]
	return in.Class, in.Src1, in.Src2
}

// headBlocked reports whether the issue head is provably blocked, via
// whichever blockCause variant matches the running engine.
//
//lint:hotpath skip-ahead legality check; must not allocate
func (s *sim) headBlocked() bool {
	i := s.w.idx(s.issued)
	if s.fast {
		_, blocked := s.blockCauseFast(s.issued, i, isa.Class(s.fc.Class[s.issued]))
		return blocked
	}
	_, blocked := s.blockCause(i)
	return blocked
}
