package pipeline

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

// simulatedResult produces a Result with most counters populated: a
// real workload stream over a sampled run.
func simulatedResult(t *testing.T) *Result {
	t.Helper()
	prof := workload.All()[0]
	gen, err := workload.NewGenerator(prof)
	if err != nil {
		t.Fatal(err)
	}
	cfg := MustDefaultConfig(12)
	cfg.SampleInterval = 500
	r, err := Run(cfg, trace.NewLimitStream(gen, 4000))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestResultDataRoundTrip(t *testing.T) {
	r := simulatedResult(t)
	data := r.Data()

	// JSON round-trip must be lossless.
	raw, err := json.Marshal(data)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back ResultData
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(data, back) {
		t.Fatal("ResultData changed across JSON round-trip")
	}

	// Restore under the same config must reproduce the entire Result:
	// DeepEqual over the whole struct guards against future Result
	// fields being forgotten in the codec (a new nonzero field here
	// fails until Data/Restore carry it).
	restored := back.Restore(r.Config)
	restored.Manifest = r.Manifest // provenance is restamped by design
	if !reflect.DeepEqual(restored, r) {
		t.Fatal("restored Result differs from original")
	}

	// Spot-check the derived figures the study layer consumes.
	if restored.BIPS() != r.BIPS() || restored.IPC() != r.IPC() ||
		restored.Gamma() != r.Gamma() || restored.HazardRate() != r.HazardRate() {
		t.Fatal("derived figures differ after restore")
	}
}

func TestResultDataIsIndependent(t *testing.T) {
	r := simulatedResult(t)
	data := r.Data()
	if len(r.IssueHist) == 0 || len(r.Samples) == 0 {
		t.Fatal("test run produced no histogram/samples")
	}
	r.IssueHist[0] += 99
	r.Samples[0].Retired += 99
	if data.IssueHist[0] == r.IssueHist[0] {
		t.Fatal("Data shares IssueHist storage with Result")
	}
	if data.Samples[0].Retired == r.Samples[0].Retired {
		t.Fatal("Data shares Samples storage with Result")
	}
}
