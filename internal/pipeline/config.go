package pipeline

import (
	"errors"
	"fmt"

	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/invariant"
	"repro/internal/telemetry"
)

// EngineKind selects the stepping engine implementation. The engines
// are bit-identical by contract — the difftest bit-identity tier runs
// the full workload catalog through both and requires byte-equal
// results — so the choice is a throughput knob, never a semantic one.
type EngineKind int

const (
	// EngineAuto (the zero value) uses the optimized engine: packed
	// trace pre-decode when the source stream is a trace.PackedStream,
	// and closed-form skip-ahead over provably inert stall spans
	// whenever no per-cycle observer (tracer, invariants, sampling) is
	// attached.
	EngineAuto EngineKind = iota
	// EnginePerCycle forces reference per-cycle stepping with no
	// skip-ahead and no packed fast path — the baseline the
	// bit-identity tier diffs the optimized engine against.
	EnginePerCycle
)

// Config specifies one simulation: the machine geometry, depth plan,
// technology constants, and the attached predictor and cache
// hierarchy.
type Config struct {
	// Machine geometry.
	Width       int // decode/issue/retire width (the paper's 4-issue machine)
	AgenWidth   int // address-generation units
	CachePorts  int // data-cache ports (also bounds memory issues per cycle)
	BranchWidth int // branches issued per cycle
	AgenQCap    int // address-queue capacity (instructions)
	ExecQCap    int // execution-queue capacity (instructions)
	WindowCap   int // maximum in-flight instructions (completion buffer)

	// OutOfOrder selects out-of-order issue with register renaming
	// (the paper's machine supports both; its study uses in-order,
	// finding "only minor differences" — reproduce that with the
	// abl-ooo experiment). A one-stage rename unit is inserted after
	// decode; the issue stage selects ready instructions oldest-first
	// from the execution-queue window.
	OutOfOrder bool

	// Depth plan (build with PlanDepth).
	Plan DepthPlan

	// Technology, used to convert fixed-FO4 miss latencies to cycles.
	TP float64 // total logic delay, FO4
	TO float64 // per-stage latch overhead, FO4

	// Attached models. Predictor may be nil for perfect prediction;
	// Hierarchy may be nil for a perfect (always-hit) cache; BTB may
	// be nil for perfect target provision (taken redirects then cost
	// only the RedirectBubble).
	Predictor branch.Predictor
	BTB       *branch.BTB
	Hierarchy *cache.Hierarchy

	// BTBMissBubbles is the extra fetch-hold, in cycles, when a
	// correctly predicted taken branch misses the BTB and the target
	// must come from decode.
	BTBMissBubbles int

	// NonBlockingCache lifts the blocking-miss rule: memory misses no
	// longer serialize behind one another (idealized infinite MSHRs).
	// The baseline models the era's blocking L1.
	NonBlockingCache bool

	// ICache models the instruction cache: when non-nil, fetch stalls
	// on instruction-line misses for ICacheMissFO4 of time. The
	// baseline assumes a perfect front end, as the paper's trace-
	// driven methodology does.
	ICache        *cache.Cache
	ICacheMissFO4 float64

	// RedirectBubble inserts a one-cycle fetch bubble after every
	// correctly predicted taken branch (taken-branch redirect).
	RedirectBubble bool

	// KeepState starts the run with the attached hierarchy's (and
	// predictor's) existing contents instead of resetting them —
	// used after an architectural warm-up pass.
	KeepState bool

	// WrongPathActivity charges the front end (fetch, decode, rename)
	// with full-rate switching during misprediction-recovery windows:
	// a real machine fetches down the wrong path while the branch
	// resolves, burning energy the freeze model otherwise omits.
	WrongPathActivity bool

	// Tracer, when non-nil, records cycle-level fetch/issue/retire/
	// stall events and per-unit clock-gate activity into its ring
	// buffer (see pipeline.NewTracer for a schema-matched tracer).
	// Nil disables event tracing at zero per-cycle cost.
	//lint:fpexempt observer only: tracing never alters simulated results
	Tracer *telemetry.Tracer

	// Metrics, when non-nil, receives the run's counters (instruction,
	// cycle, stall and per-unit totals, plus cache and BTB statistics)
	// after simulation, for aggregation across runs and export.
	//lint:fpexempt observer only: metrics export never alters simulated results
	Metrics *telemetry.Registry

	// Invariants, when non-nil, attaches the runtime conformance
	// engine: per-cycle capacity laws and end-of-run conservation laws
	// record violations (with cycle/unit context) into the Recorder
	// and its conformance_violations_total counter. Nil disables the
	// engine at the cost of one predictable branch per cycle.
	//lint:fpexempt observer only: invariant checking never alters simulated results
	Invariants *invariant.Recorder

	// Engine selects the stepping engine (EngineAuto: packed
	// skip-ahead; EnginePerCycle: the per-cycle reference). Both
	// produce bit-identical Results, so the toggle must not split
	// result-cache keys or run fingerprints.
	//lint:fpexempt engines are bit-identical by contract (difftest bit-identity tier); a throughput knob must not split cache keys
	Engine EngineKind

	// SampleInterval, when positive, records per-unit activity and
	// instruction counts every SampleInterval cycles, producing the
	// cycle-resolved power trace the paper's monitor collects
	// ("we monitor the usage of each microarchitectural unit of the
	// processor every cycle", §3). Zero disables sampling.
	SampleInterval uint64

	// MaxCycles aborts runaway simulations (0 = no limit beyond the
	// built-in forward-progress watchdog).
	MaxCycles uint64
}

// DefaultConfig returns the study's baseline machine at the given
// depth: 4-issue, 2 AGUs, 2 cache ports, tournament predictor,
// default cache hierarchy, t_p = 140 FO4, t_o = 2.5 FO4.
func DefaultConfig(depth int) (Config, error) {
	c, err := DefaultGeometry(depth)
	if err != nil {
		return Config{}, err
	}
	AttachDefaultModels(&c)
	return c, nil
}

// DefaultGeometry returns the baseline machine without its attached
// models (predictor, BTB, cache hierarchy). Callers that immediately
// replace the models — e.g. a sweep serving pre-warmed clones — skip
// the cost of constructing state that would be thrown away;
// AttachDefaultModels completes the configuration otherwise.
func DefaultGeometry(depth int) (Config, error) {
	plan, err := PlanDepth(depth)
	if err != nil {
		return Config{}, err
	}
	return Config{
		Width:          4,
		AgenWidth:      2,
		CachePorts:     2,
		BranchWidth:    1,
		AgenQCap:       8,
		ExecQCap:       16,
		WindowCap:      512,
		Plan:           plan,
		TP:             140,
		TO:             2.5,
		BTBMissBubbles: 2,
		RedirectBubble: true,
	}, nil
}

// AttachDefaultModels equips a configuration with the baseline's
// freshly constructed model state: tournament predictor, 512×4 BTB,
// and the default two-level cache hierarchy.
func AttachDefaultModels(c *Config) {
	c.Predictor = branch.NewTournament(12)
	c.BTB = branch.MustBTB(512, 4)
	c.Hierarchy = cache.MustHierarchy(cache.DefaultHierarchy())
}

// MustDefaultConfig is DefaultConfig for known-good depths.
func MustDefaultConfig(depth int) Config {
	c, err := DefaultConfig(depth)
	if err != nil {
		panic(err)
	}
	return c
}

// Validate reports configuration problems.
func (c *Config) Validate() error {
	switch {
	case c.Width < 1:
		return errors.New("pipeline: width must be ≥ 1")
	case c.AgenWidth < 1 || c.CachePorts < 1:
		return errors.New("pipeline: agen width and cache ports must be ≥ 1")
	case c.BranchWidth < 1:
		return errors.New("pipeline: branch width must be ≥ 1")
	case c.AgenQCap < 1 || c.ExecQCap < 1:
		return errors.New("pipeline: queue capacities must be ≥ 1")
	case c.WindowCap < c.ExecQCap+c.Width:
		return errors.New("pipeline: window too small for the execution queue")
	case c.TP <= 0 || c.TO <= 0:
		return errors.New("pipeline: technology constants must be positive")
	}
	if c.BTBMissBubbles < 0 {
		return errors.New("pipeline: negative BTB miss bubbles")
	}
	if c.ICache != nil && c.ICacheMissFO4 <= 0 {
		return errors.New("pipeline: ICache requires a positive miss latency")
	}
	if c.Plan.Total() != c.Plan.Depth {
		return fmt.Errorf("pipeline: plan stages %d ≠ depth %d", c.Plan.Total(), c.Plan.Depth)
	}
	if c.Plan.Depth < MinSimDepth || c.Plan.Depth > MaxSimDepth {
		return fmt.Errorf("pipeline: depth %d out of range", c.Plan.Depth)
	}
	return nil
}

// CycleTime returns t_s = t_o + t_p/p in FO4 for this configuration.
func (c *Config) CycleTime() float64 {
	return c.TO + c.TP/float64(c.Plan.Depth)
}

// LatencyCycles converts a fixed FO4 latency (an L2 or memory access)
// into whole cycles at this configuration's cycle time, rounding up
// with a one-cycle minimum.
func (c *Config) LatencyCycles(fo4 float64) uint64 {
	if fo4 <= 0 {
		return 0
	}
	ts := c.CycleTime()
	n := uint64(fo4 / ts)
	if float64(n)*ts < fo4 {
		n++
	}
	if n == 0 {
		n = 1
	}
	return n
}
