package pipeline

import "fmt"

// CycleBucket classifies where one simulated cycle went. The budget is
// the simulator's self-applied version of the paper's per-stage CPI
// decomposition (§4): every cycle of a run is attributed to exactly one
// bucket, so the buckets sum to the run's total cycle count — a
// conservation law the invariant engine enforces (RuleCycleBudget).
//
// The attribution point is the issue stage's once-per-cycle accounting
// (finishIssueAccounting): a cycle either issued work, drained the
// tail of the trace, or stalled for a classified cause. Stall causes
// map to buckets one-to-one except the frontend, which splits into
// instruction-cache-miss cycles and ordinary pipeline-fill cycles.
type CycleBucket int

// Cycle-budget buckets, in reporting order.
const (
	// BudgetUsefulIssue: at least one instruction issued.
	BudgetUsefulIssue CycleBucket = iota
	// BudgetICacheMiss: the execution queue ran dry while an
	// instruction-cache miss blocked fetch.
	BudgetICacheMiss
	// BudgetFrontendFill: the execution queue ran dry with fetch
	// unblocked — pipeline fill, redirect bubbles, queue backpressure.
	BudgetFrontendFill
	// BudgetMispredictRefill: the front end was frozen waiting for a
	// mispredicted branch to resolve (the depth-scaled refill cost).
	BudgetMispredictRefill
	// BudgetDCacheMiss: the head instruction waited on a data-cache
	// miss.
	BudgetDCacheMiss
	// BudgetDependency: the head instruction's source operands were
	// not ready.
	BudgetDependency
	// BudgetAgenWindow: the head instruction was a memory op still in
	// the address-generation/cache pipeline (window/structural stall
	// on the address path).
	BudgetAgenWindow
	// BudgetFPStructural: the head instruction needed the busy
	// (unpipelined) FPU.
	BudgetFPStructural
	// BudgetDrain: the trace was exhausted and the pipeline was
	// emptying — cycles after the last fetch with nothing in flight to
	// issue.
	BudgetDrain

	numCycleBuckets = iota
)

// NumCycleBuckets is the number of cycle-budget buckets.
const NumCycleBuckets = int(numCycleBuckets)

// String names the bucket. The names are the shared observability
// vocabulary (promexp.BudgetBuckets): they key the pipeline.budget.*
// counters, the pipeline_cycle_budget_fraction{bucket} series and the
// conformance report, and are validated by the metriclabel analyzer.
func (b CycleBucket) String() string {
	switch b {
	case BudgetUsefulIssue:
		return "useful_issue"
	case BudgetICacheMiss:
		return "icache_miss"
	case BudgetFrontendFill:
		return "frontend_fill"
	case BudgetMispredictRefill:
		return "mispredict_refill"
	case BudgetDCacheMiss:
		return "dcache_miss"
	case BudgetDependency:
		return "dependency"
	case BudgetAgenWindow:
		return "agen_window"
	case BudgetFPStructural:
		return "fp_structural"
	case BudgetDrain:
		return "drain"
	default:
		return fmt.Sprintf("CycleBucket(%d)", int(b))
	}
}

// CycleBucketNames returns the bucket name table in CycleBucket order,
// for telemetry schemas and reports.
func CycleBucketNames() []string {
	out := make([]string, NumCycleBuckets)
	for b := 0; b < NumCycleBuckets; b++ {
		out[b] = CycleBucket(b).String()
	}
	return out
}

// budgetForStall maps a classified stall cause to its budget bucket.
// iBusy reports whether an instruction-cache miss was in flight, which
// splits the frontend cause into its miss and fill components.
//
//lint:hotpath per-cycle budget attribution; must not allocate
func budgetForStall(cause StallCause, iBusy bool) CycleBucket {
	switch cause {
	case StallBranch:
		return BudgetMispredictRefill
	case StallFrontend:
		if iBusy {
			return BudgetICacheMiss
		}
		return BudgetFrontendFill
	case StallAgen:
		return BudgetAgenWindow
	case StallMemory:
		return BudgetDCacheMiss
	case StallDependency:
		return BudgetDependency
	case StallFP:
		return BudgetFPStructural
	default:
		return BudgetFrontendFill
	}
}

// BudgetTotal sums the cycle budget over all buckets; it equals Cycles
// for any result the engine produced (RuleCycleBudget).
func (r *Result) BudgetTotal() uint64 {
	var t uint64
	for _, n := range r.CycleBudget {
		t += n
	}
	return t
}

// BudgetFraction returns the fraction of all cycles attributed to the
// bucket.
func (r *Result) BudgetFraction(b CycleBucket) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.CycleBudget[b]) / float64(r.Cycles)
}

// BudgetReport renders the cycle budget as a per-bucket table, the
// run's answer to "where did the time go".
func (r *Result) BudgetReport() string {
	var b []byte
	b = fmt.Appendf(b, "%-18s %12s %7s\n", "bucket", "cycles", "share")
	for c := 0; c < NumCycleBuckets; c++ {
		bk := CycleBucket(c)
		b = fmt.Appendf(b, "%-18s %12d %6.1f%%\n", bk, r.CycleBudget[bk], 100*r.BudgetFraction(bk))
	}
	return string(b)
}
