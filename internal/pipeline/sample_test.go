package pipeline

import "testing"

// Tests for the activity-sampling path (Config.SampleInterval →
// takeSample), which feeds the power-over-time trace. The contract:
// a sample is recorded exactly when cycle%interval == 0, each sample
// covers the interval ending at its Cycle, and the tail of the run
// beyond the last boundary is deliberately unsampled (power_test.go
// relies on that accounting).

func TestSampleIntervalZeroDisablesSampling(t *testing.T) {
	r := mustRun(t, idealConfig(10), rrIndependent(2000))
	if len(r.Samples) != 0 {
		t.Fatalf("SampleInterval=0 produced %d samples, want none", len(r.Samples))
	}
}

func TestSampleBoundariesAndDeltas(t *testing.T) {
	const iv = 64
	cfg := idealConfig(10)
	cfg.SampleInterval = iv
	r := mustRun(t, cfg, rrIndependent(3000))

	want := int(r.Cycles / iv)
	if len(r.Samples) != want {
		t.Fatalf("got %d samples over %d cycles, want %d", len(r.Samples), r.Cycles, want)
	}
	var retired uint64
	var ops [NumUnits]uint64
	for i, sm := range r.Samples {
		if wantCycle := uint64(i+1) * iv; sm.Cycle != wantCycle {
			t.Fatalf("sample %d at cycle %d, want %d", i, sm.Cycle, wantCycle)
		}
		if sm.Retired > iv*uint64(cfg.Width) {
			t.Fatalf("sample %d retired %d > interval capacity", i, sm.Retired)
		}
		retired += sm.Retired
		for u := 0; u < NumUnits; u++ {
			if sm.UnitActive[u] > iv {
				t.Fatalf("sample %d: unit %s active %d cycles > interval %d",
					i, Unit(u), sm.UnitActive[u], iv)
			}
			ops[u] += sm.UnitOps[u]
		}
	}
	// The deltas over all samples must reassemble the run totals minus
	// the unsampled tail: never more than the total, and within one
	// interval's worth of it.
	if retired > r.Instructions {
		t.Fatalf("samples retired %d > run total %d", retired, r.Instructions)
	}
	tail := r.Cycles % iv
	if tail > 0 && retired == r.Instructions && r.Instructions > 0 {
		// Only possible if nothing retired after the last boundary —
		// plausible for a drained pipeline, so not an error; the
		// stronger bound below still applies.
		t.Logf("tail of %d cycles retired nothing", tail)
	}
	if deficit := r.Instructions - retired; deficit > iv*uint64(cfg.Width) {
		t.Fatalf("unsampled tail accounts for %d instructions, more than one interval", deficit)
	}
	for u := 0; u < NumUnits; u++ {
		if ops[u] > r.UnitOps[u] {
			t.Fatalf("unit %s: sampled ops %d > run total %d", Unit(u), ops[u], r.UnitOps[u])
		}
	}
}

func TestSampleFinalPartialTailUnsampled(t *testing.T) {
	// An interval longer than the whole run yields no samples at all:
	// the run ends before the first boundary.
	cfg := idealConfig(10)
	cfg.SampleInterval = 1 << 40
	r := mustRun(t, cfg, rrIndependent(1000))
	if len(r.Samples) != 0 {
		t.Fatalf("interval beyond run length produced %d samples", len(r.Samples))
	}
	if r.Instructions != 1000 {
		t.Fatalf("retired %d of 1000", r.Instructions)
	}
}

func TestSampleIntervalOneCoversEveryCycle(t *testing.T) {
	cfg := idealConfig(10)
	cfg.SampleInterval = 1
	r := mustRun(t, cfg, rrIndependent(500))
	if uint64(len(r.Samples)) != r.Cycles {
		t.Fatalf("interval 1: %d samples over %d cycles", len(r.Samples), r.Cycles)
	}
	var retired uint64
	for _, sm := range r.Samples {
		retired += sm.Retired
	}
	if retired != r.Instructions {
		t.Fatalf("per-cycle samples retired %d, run retired %d", retired, r.Instructions)
	}
}
