package pipeline

import (
	"strings"
	"testing"

	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/workload"
)

// idealConfig returns a machine with perfect prediction and a perfect
// cache, to isolate the mechanism under test.
func idealConfig(depth int) Config {
	c := MustDefaultConfig(depth)
	c.Predictor = nil
	c.Hierarchy = nil
	c.RedirectBubble = false
	return c
}

func rrIndependent(n int) []isa.Instruction {
	ins := make([]isa.Instruction, n)
	for i := range ins {
		ins[i] = isa.Instruction{
			PC:    uint64(0x1000 + 4*i),
			Class: isa.RR,
			Dst:   isa.Reg(i % isa.NumGPR),
			Src1:  isa.RegNone,
			Src2:  isa.RegNone,
		}
	}
	return ins
}

func mustRun(t *testing.T, cfg Config, ins []isa.Instruction) *Result {
	t.Helper()
	r, err := Run(cfg, trace.NewSliceStream(ins))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestIndependentRRThroughput(t *testing.T) {
	// With no hazards, a 4-wide machine sustains IPC ≈ 4.
	const n = 4000
	r := mustRun(t, idealConfig(10), rrIndependent(n))
	if r.Instructions != n {
		t.Fatalf("retired %d of %d", r.Instructions, n)
	}
	if ipc := r.IPC(); ipc < 3.7 {
		t.Errorf("IPC = %.2f, want ≈ 4", ipc)
	}
	if a := r.Alpha(); a < 3.7 || a > 4.0 {
		t.Errorf("alpha = %.2f, want ≈ 4", a)
	}
	if r.TotalStallCycles() > n/20 {
		t.Errorf("stalls = %d on hazard-free code", r.TotalStallCycles())
	}
}

func TestDependencyChainLatency(t *testing.T) {
	// A strict RR dependency chain issues one instruction per cycle at
	// any depth: simple-ALU forwarding does not scale with the E-pipe
	// (see sim.go's intLat).
	const n = 2000
	ins := make([]isa.Instruction, n)
	for i := range ins {
		ins[i] = isa.Instruction{
			PC:    uint64(0x1000 + 4*i),
			Class: isa.RR,
			Dst:   isa.Reg(1),
			Src1:  isa.Reg(1),
			Src2:  isa.RegNone,
		}
	}
	for _, depth := range []int{5, 10, 24} {
		r := mustRun(t, idealConfig(depth), ins)
		if ipc := r.IPC(); ipc < 0.93 || ipc > 1.01 {
			t.Errorf("depth %d: chain IPC = %.3f, want ≈ 1", depth, ipc)
		}
	}
}

func TestLoadUseCostGrowsWithDepth(t *testing.T) {
	// A load-use chain pays the address-generation/cache pipeline per
	// iteration, so its cycle count grows with depth.
	var ins []isa.Instruction
	for i := 0; i < 500; i++ {
		ins = append(ins, isa.Instruction{
			PC: uint64(0x1000 + 8*i), Class: isa.Load,
			Dst: 1, Src1: isa.RegNone, Src2: isa.RegNone,
			Addr: 0x1000_0000,
		})
		ins = append(ins, isa.Instruction{
			PC: uint64(0x1004 + 8*i), Class: isa.RR,
			Dst: 2, Src1: 1, Src2: isa.RegNone,
		})
	}
	shallow := mustRun(t, idealConfig(4), ins)
	deep := mustRun(t, idealConfig(24), ins)
	if deep.Cycles < shallow.Cycles*2 {
		t.Errorf("load-use cycles: depth 24 %d < 2× depth 4 %d", deep.Cycles, shallow.Cycles)
	}
	if deep.StallCycles[StallAgen]+deep.StallCycles[StallMemory]+deep.StallCycles[StallDependency] == 0 {
		t.Error("no load-use stalls recorded")
	}
}

func TestMispredictPenaltyScalesWithDepth(t *testing.T) {
	// All branches mispredicted (static predicts taken; outcomes are
	// not-taken): the refill penalty must grow with pipeline depth.
	mk := func() []isa.Instruction {
		var ins []isa.Instruction
		for b := 0; b < 200; b++ {
			ins = append(ins, isa.Instruction{
				PC: uint64(0x2000 + 64*b), Class: isa.Branch,
				Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone,
				Target: 0x100, Taken: false,
			})
			for k := 0; k < 4; k++ {
				ins = append(ins, isa.Instruction{
					PC: uint64(0x2000 + 64*b + 4 + 4*k), Class: isa.RR,
					Dst: isa.Reg(k), Src1: isa.RegNone, Src2: isa.RegNone,
				})
			}
		}
		return ins
	}
	run := func(depth int) *Result {
		cfg := idealConfig(depth)
		cfg.Predictor = branch.NewStatic()
		return mustRun(t, cfg, mk())
	}
	shallow := run(5)
	deep := run(25)
	if shallow.Hazards.BranchMispredicts != 200 || deep.Hazards.BranchMispredicts != 200 {
		t.Fatalf("mispredicts: %d / %d, want 200",
			shallow.Hazards.BranchMispredicts, deep.Hazards.BranchMispredicts)
	}
	// Per-mispredict cycle cost = total branch stall cycles / events.
	costS := float64(shallow.StallCycles[StallBranch]) / 200
	costD := float64(deep.StallCycles[StallBranch]) / 200
	if costD < costS*2.5 {
		t.Errorf("mispredict cost %0.1f → %0.1f cycles from depth 5 → 25; want ≥ 2.5×",
			costS, costD)
	}
}

func TestCacheMissCost(t *testing.T) {
	// Loads striding far apart (always missing) must run much slower
	// than loads hitting one line, and the miss latency in cycles
	// must match the configured FO4 latency conversion.
	mkLoads := func(stride uint64) []isa.Instruction {
		ins := make([]isa.Instruction, 600)
		for i := range ins {
			ins[i] = isa.Instruction{
				PC: uint64(0x1000 + 4*i), Class: isa.Load,
				Dst: isa.Reg(i % 8), Src1: isa.RegNone, Src2: isa.RegNone,
				Addr: 0x1000_0000 + uint64(i)*stride,
			}
		}
		return ins
	}
	cfg := idealConfig(10)
	cfg.Hierarchy = cache.MustHierarchy(cache.DefaultHierarchy())
	hits := mustRun(t, cfg, mkLoads(0))
	cfg = idealConfig(10)
	cfg.Hierarchy = cache.MustHierarchy(cache.DefaultHierarchy())
	misses := mustRun(t, cfg, mkLoads(1<<20)) // new L2-missing line every load
	if hits.L1Misses > 1 {
		t.Errorf("same-line loads missed %d times", hits.L1Misses)
	}
	if misses.Hazards.LoadMemAccesses < 590 {
		t.Errorf("memory accesses = %d, want ≈ 600", misses.Hazards.LoadMemAccesses)
	}
	if misses.Cycles < hits.Cycles*10 {
		t.Errorf("missing loads %d cycles vs hitting %d — memory latency not applied",
			misses.Cycles, hits.Cycles)
	}
}

func TestMissTimeCostShrinksWithDepth(t *testing.T) {
	// A memory miss costs fixed FO4 *time*, so its cycle cost grows
	// with depth but its time cost is ≈ constant — the mechanism that
	// keeps the simulator's deep-pipeline performance above the
	// analytic model's linear-hazard prediction.
	mk := func() []isa.Instruction {
		ins := make([]isa.Instruction, 400)
		for i := range ins {
			ins[i] = isa.Instruction{
				PC: uint64(0x1000 + 4*i), Class: isa.Load,
				Dst: isa.Reg(i % 8), Src1: isa.RegNone, Src2: isa.RegNone,
				Addr: 0x1000_0000 + uint64(i)<<20,
			}
		}
		return ins
	}
	run := func(depth int) *Result {
		cfg := idealConfig(depth)
		cfg.Hierarchy = cache.MustHierarchy(cache.DefaultHierarchy())
		return mustRun(t, cfg, mk())
	}
	shallow := run(5)
	deep := run(25)
	tS := shallow.TimeFO4()
	tD := deep.TimeFO4()
	if tD > tS*1.5 {
		t.Errorf("miss-bound time grew %0.0f → %0.0f FO4 with depth; should be ≈ flat", tS, tD)
	}
}

func TestFPSerialization(t *testing.T) {
	// Unpipelined FP: N ops of latency L take ≈ N·L cycles.
	const n, lat = 300, 8
	ins := make([]isa.Instruction, n)
	for i := range ins {
		ins[i] = isa.Instruction{
			PC: uint64(0x1000 + 4*i), Class: isa.FP,
			Dst:  isa.FirstFPR + isa.Reg(i%isa.NumFPR),
			Src1: isa.RegNone, Src2: isa.RegNone, FPLat: lat,
		}
	}
	r := mustRun(t, idealConfig(10), ins)
	if r.Cycles < n*lat || r.Cycles > n*lat+200 {
		t.Errorf("FP cycles = %d, want ≈ %d", r.Cycles, n*lat)
	}
	if r.Hazards.FPEpisodes == 0 {
		t.Error("no FP structural episodes recorded")
	}
	if a := r.Alpha(); a > 1.01 {
		t.Errorf("alpha = %.2f for serialized FP, want ≤ 1", a)
	}
}

func TestConservationAndHistogram(t *testing.T) {
	prof := workload.Representative(workload.Modern)
	g := workload.MustGenerator(prof)
	cfg := MustDefaultConfig(12)
	r, err := Run(cfg, trace.NewLimitStream(g, 5000))
	if err != nil {
		t.Fatal(err)
	}
	if r.Instructions != 5000 {
		t.Fatalf("retired %d of 5000", r.Instructions)
	}
	var histSum uint64
	var weighted uint64
	for k, c := range r.IssueHist {
		histSum += c
		weighted += uint64(k) * c
	}
	if histSum != r.Cycles {
		t.Errorf("issue histogram covers %d of %d cycles", histSum, r.Cycles)
	}
	if weighted != r.Instructions {
		t.Errorf("issued-weighted histogram = %d, want %d", weighted, r.Instructions)
	}
	if r.Alpha() > float64(cfg.Width) {
		t.Errorf("alpha %.2f exceeds width", r.Alpha())
	}
	if r.MaxWindowOccupied > cfg.WindowCap {
		t.Errorf("window occupancy %d exceeds cap", r.MaxWindowOccupied)
	}
	if r.Branches == 0 || r.LoadCount == 0 || r.StoreCount == 0 {
		t.Error("expected mixed traffic")
	}
	if len(r.String()) == 0 {
		t.Error("empty report")
	}
}

func TestDeterminism(t *testing.T) {
	prof := workload.Representative(workload.SPECInt)
	run := func() *Result {
		g := workload.MustGenerator(prof)
		r, err := Run(MustDefaultConfig(14), trace.NewLimitStream(g, 4000))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.Hazards != b.Hazards || a.UnitActive != b.UnitActive {
		t.Error("simulation is not deterministic")
	}
}

func TestUnitActivityBounds(t *testing.T) {
	prof := workload.Representative(workload.Legacy)
	g := workload.MustGenerator(prof)
	r, err := Run(MustDefaultConfig(10), trace.NewLimitStream(g, 4000))
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < NumUnits; u++ {
		if r.UnitActive[u] > r.Cycles {
			t.Errorf("%s active %d of %d cycles", Unit(u), r.UnitActive[u], r.Cycles)
		}
	}
	// The major units must have seen activity.
	for _, u := range []Unit{UnitFetch, UnitDecode, UnitCache, UnitExec, UnitRetire} {
		if r.UnitActive[u] == 0 {
			t.Errorf("%s never active", u)
		}
	}
	// Clock gating premise: no unit is active every single cycle.
	idle := false
	for u := 0; u < NumUnits; u++ {
		if r.UnitActive[u] < r.Cycles {
			idle = true
		}
	}
	if !idle {
		t.Error("all units active all cycles — gating would be a no-op")
	}
}

func TestMaxCyclesAbort(t *testing.T) {
	cfg := idealConfig(10)
	cfg.MaxCycles = 10
	if _, err := Run(cfg, trace.NewSliceStream(rrIndependent(4000))); err == nil {
		t.Error("MaxCycles not enforced")
	}
}

func TestRunValidatesConfig(t *testing.T) {
	cfg := idealConfig(10)
	cfg.Width = 0
	if _, err := Run(cfg, trace.NewSliceStream(nil)); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestEmptyTrace(t *testing.T) {
	r := mustRun(t, idealConfig(10), nil)
	if r.Instructions != 0 {
		t.Errorf("retired %d from empty trace", r.Instructions)
	}
}

func TestShallowDepthsRun(t *testing.T) {
	// Merged-unit plans (depths 2 and 3) must execute correctly.
	prof := workload.Representative(workload.SPECInt)
	for _, d := range []int{2, 3, 4} {
		g := workload.MustGenerator(prof)
		r, err := Run(MustDefaultConfig(d), trace.NewLimitStream(g, 3000))
		if err != nil {
			t.Fatalf("depth %d: %v", d, err)
		}
		if r.Instructions != 3000 {
			t.Fatalf("depth %d retired %d", d, r.Instructions)
		}
		if r.IPC() <= 0 {
			t.Fatalf("depth %d IPC = %g", d, r.IPC())
		}
	}
}

func TestPerformanceCurveShape(t *testing.T) {
	// Time per instruction (in FO4) must be high at depth 2 (few
	// stages, slow clock), drop to a minimum, and rise or flatten by
	// depth 25 — the paper's performance-optimum shape.
	prof := workload.Representative(workload.Modern)
	tau := map[int]float64{}
	for _, d := range []int{2, 10, 18, 25} {
		g := workload.MustGenerator(prof)
		r, err := Run(MustDefaultConfig(d), trace.NewLimitStream(g, 8000))
		if err != nil {
			t.Fatal(err)
		}
		tau[d] = r.TimePerInstructionFO4()
	}
	if !(tau[2] > tau[10]) {
		t.Errorf("τ(2)=%.1f should exceed τ(10)=%.1f", tau[2], tau[10])
	}
	if !(tau[2] > tau[18]) {
		t.Errorf("τ(2)=%.1f should exceed τ(18)=%.1f", tau[2], tau[18])
	}
}

func TestNonBlockingCacheOverlapsMisses(t *testing.T) {
	// Independent missing loads back-to-back: a blocking cache
	// serializes their memory latencies; MSHRs overlap them.
	mk := func() []isa.Instruction {
		ins := make([]isa.Instruction, 40)
		for i := range ins {
			ins[i] = isa.Instruction{
				PC: uint64(0x1000 + 4*i), Class: isa.Load,
				Dst: isa.Reg(i % 8), Src1: isa.RegNone, Src2: isa.RegNone,
				Addr: 0x4000_0000 + uint64(i)<<21,
			}
		}
		return ins
	}
	run := func(nonBlocking bool) *Result {
		cfg := idealConfig(10)
		cfg.Hierarchy = cache.MustHierarchy(cache.DefaultHierarchy())
		cfg.NonBlockingCache = nonBlocking
		return mustRun(t, cfg, mk())
	}
	blocking := run(false)
	mshr := run(true)
	if mshr.Cycles*2 > blocking.Cycles {
		t.Errorf("MSHRs %d cycles not well below blocking %d", mshr.Cycles, blocking.Cycles)
	}
}

func TestICacheMissesStallFetch(t *testing.T) {
	// A code footprint far beyond the I-cache forces line misses and
	// slows the run; the same trace with a perfect front end is fast.
	mk := func() []isa.Instruction {
		ins := make([]isa.Instruction, 2000)
		for i := range ins {
			ins[i] = isa.Instruction{
				// New line every instruction, huge footprint.
				PC:    uint64(0x10000 + 64*i),
				Class: isa.RR, Dst: isa.Reg(i % 8),
				Src1: isa.RegNone, Src2: isa.RegNone,
			}
		}
		return ins
	}
	perfect := mustRun(t, idealConfig(10), mk())
	cfg := idealConfig(10)
	cfg.ICache = cache.MustNew(cache.Config{SizeBytes: 8 << 10, LineBytes: 64, Ways: 2})
	cfg.ICacheMissFO4 = 90
	missy := mustRun(t, cfg, mk())
	if missy.ICacheMisses < 1900 {
		t.Fatalf("I-cache misses = %d, want ≈ 2000", missy.ICacheMisses)
	}
	if missy.Cycles < perfect.Cycles*3 {
		t.Errorf("I-cache misses cost too little: %d vs %d cycles", missy.Cycles, perfect.Cycles)
	}
	// Hot code loops entirely within the I-cache after warmup.
	small := mk()[:100]
	var looped []isa.Instruction
	for pass := 0; pass < 10; pass++ {
		looped = append(looped, small...)
	}
	cfg2 := idealConfig(10)
	cfg2.ICache = cache.MustNew(cache.Config{SizeBytes: 8 << 10, LineBytes: 64, Ways: 2})
	cfg2.ICacheMissFO4 = 90
	hot := mustRun(t, cfg2, looped)
	if hot.ICacheMisses > 110 {
		t.Errorf("hot loop missed %d times, want ≈ 100 cold misses", hot.ICacheMisses)
	}
}

func TestICacheConfigValidation(t *testing.T) {
	cfg := idealConfig(10)
	cfg.ICache = cache.MustNew(cache.Config{SizeBytes: 8 << 10, LineBytes: 64, Ways: 2})
	cfg.ICacheMissFO4 = 0
	if err := cfg.Validate(); err == nil {
		t.Error("I-cache without miss latency accepted")
	}
}

func TestBTBMissesCostFetchBubbles(t *testing.T) {
	// Many distinct correctly-predicted taken branches: with a tiny
	// BTB every redirect waits for decode; with a perfect front end
	// (nil BTB) only the redirect bubble applies.
	mk := func() []isa.Instruction {
		var ins []isa.Instruction
		for b := 0; b < 300; b++ {
			ins = append(ins, isa.Instruction{
				PC: uint64(0x2000 + 148*b), Class: isa.Branch,
				Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone,
				Target: uint64(0x3000 + 148*b), Taken: true,
			})
			ins = append(ins, isa.Instruction{
				PC: uint64(0x3000 + 148*b), Class: isa.RR,
				Dst: 1, Src1: isa.RegNone, Src2: isa.RegNone,
			})
		}
		return ins
	}
	run := func(btb *branch.BTB) *Result {
		cfg := idealConfig(10)
		cfg.Predictor = branch.NewStatic() // always taken: all correct here
		cfg.RedirectBubble = true
		cfg.BTB = btb
		cfg.BTBMissBubbles = 2
		return mustRun(t, cfg, mk())
	}
	perfect := run(nil)
	tiny := run(branch.MustBTB(8, 2))
	if perfect.BTBMisses != 0 {
		t.Fatalf("nil BTB recorded %d misses", perfect.BTBMisses)
	}
	if tiny.BTBMisses < 250 {
		t.Fatalf("tiny BTB misses = %d, want ≈ 300", tiny.BTBMisses)
	}
	if tiny.Cycles < perfect.Cycles+400 {
		t.Errorf("BTB misses cost too little: %d vs %d cycles", tiny.Cycles, perfect.Cycles)
	}
	// A warm, large BTB converges toward the perfect front end on
	// repeated code.
	big := branch.MustBTB(1024, 4)
	first := run(big)
	second := run(big) // BTB retained across runs
	if second.BTBMisses > first.BTBMisses/10 {
		t.Errorf("warm BTB still missing: %d then %d", first.BTBMisses, second.BTBMisses)
	}
}

func TestWrongPathActivityRaisesFrontEndEnergy(t *testing.T) {
	// All-mispredicted branches: with wrong-path modeling the fetch
	// and decode units charge through recovery windows.
	mk := func() []isa.Instruction {
		var ins []isa.Instruction
		for b := 0; b < 150; b++ {
			ins = append(ins, isa.Instruction{
				PC: uint64(0x2000 + 148*b), Class: isa.Branch,
				Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone,
				Target: 0x100, Taken: false,
			})
			ins = append(ins, isa.Instruction{
				PC: uint64(0x2004 + 148*b), Class: isa.RR,
				Dst: 1, Src1: isa.RegNone, Src2: isa.RegNone,
			})
		}
		return ins
	}
	run := func(wrongPath bool) *Result {
		cfg := idealConfig(16)
		cfg.Predictor = branch.NewStatic()
		cfg.WrongPathActivity = wrongPath
		return mustRun(t, cfg, mk())
	}
	off := run(false)
	on := run(true)
	if on.Cycles != off.Cycles {
		t.Fatalf("wrong-path modeling changed timing: %d vs %d", on.Cycles, off.Cycles)
	}
	if on.UnitOps[UnitFetch] <= off.UnitOps[UnitFetch] {
		t.Errorf("fetch ops %d not above baseline %d", on.UnitOps[UnitFetch], off.UnitOps[UnitFetch])
	}
	if on.UnitActive[UnitDecode] <= off.UnitActive[UnitDecode] {
		t.Errorf("decode activity %d not above baseline %d",
			on.UnitActive[UnitDecode], off.UnitActive[UnitDecode])
	}
}

func TestUtilizationReport(t *testing.T) {
	prof := workload.Representative(workload.SPECInt)
	g := workload.MustGenerator(prof)
	r, err := Run(MustDefaultConfig(10), trace.NewLimitStream(g, 3000))
	if err != nil {
		t.Fatal(err)
	}
	rep := r.UtilizationReport()
	for _, want := range []string{"decode", "cache", "exec", "retire", "util%"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	if strings.Contains(rep, "NaN") {
		t.Error("NaN in report")
	}
}
