package pipeline

import "fmt"

// Depth limits of the simulator. The paper studies 2–25 stages; the
// upper bound leaves headroom for sensitivity studies.
const (
	MinSimDepth = 2
	MaxSimDepth = 40
)

// DepthPlan maps an overall pipeline depth (counted, as in the paper,
// between the beginning of decode and the end of execution) onto
// per-unit stage counts. Expansion adds stages to Decode, Cache and
// Exec (and proportionally Agen); contraction first shrinks units to
// one stage each and then merges adjacent units into shared stages,
// following the paper's methodology. Queues are decoupling buffers and
// are not counted in the depth.
type DepthPlan struct {
	Depth  int
	Decode int // decode stages (≥ 1)
	Agen   int // address-generation stages (0 when merged into decode)
	Cache  int // cache-access stages (≥ 1)
	Exec   int // execution stages (0 when merged into cache)

	// MergeGroups lists units that share stages at contracted depths.
	// Merged units contribute the max of their powers (paper §3: "the
	// power assigned is the greater of the power requirement for each
	// unit").
	MergeGroups [][]Unit
}

// Stage-allocation weights for expansion: extra stages go mostly to
// Decode and Cache Access with a smaller share to the E-unit,
// following the paper's uniform insertion into Decode, Cache Access
// and the E-unit pipe (real deep pipelines grow their front ends and
// access paths faster than their ALU loops). At depth 20 the split is
// decode 8 / agen 2 / cache 6 / exec 4.
var stageWeights = map[Unit]float64{
	UnitDecode: 0.42,
	UnitAgen:   0.12,
	UnitCache:  0.28,
	UnitExec:   0.18,
}

// PlanDepth builds the DepthPlan for a target overall depth.
func PlanDepth(depth int) (DepthPlan, error) {
	if depth < MinSimDepth || depth > MaxSimDepth {
		return DepthPlan{}, fmt.Errorf("pipeline: depth %d outside [%d, %d]",
			depth, MinSimDepth, MaxSimDepth)
	}
	p := DepthPlan{Depth: depth}
	switch depth {
	case 2:
		// [Decode+Agen] [Cache+Exec]
		p.Decode, p.Agen, p.Cache, p.Exec = 1, 0, 1, 0
		p.MergeGroups = [][]Unit{{UnitDecode, UnitAgen}, {UnitCache, UnitExec}}
	case 3:
		// [Decode] [Agen+Cache] [Exec]
		p.Decode, p.Agen, p.Cache, p.Exec = 1, 0, 1, 1
		p.MergeGroups = [][]Unit{{UnitAgen, UnitCache}}
	default:
		// Largest-remainder apportionment with a 1-stage floor.
		units := []Unit{UnitDecode, UnitAgen, UnitCache, UnitExec}
		alloc := make(map[Unit]int, len(units))
		rem := make(map[Unit]float64, len(units))
		total := 0
		for _, u := range units {
			exact := stageWeights[u] * float64(depth)
			n := int(exact)
			if n < 1 {
				n = 1
			}
			alloc[u] = n
			rem[u] = exact - float64(n)
			total += n
		}
		for total < depth {
			best := units[0]
			for _, u := range units[1:] {
				if rem[u] > rem[best] {
					best = u
				}
			}
			alloc[best]++
			rem[best]--
			total++
		}
		for total > depth {
			// Over-allocation can only come from the 1-stage floors;
			// shrink the most over-represented unit above its floor.
			var worst Unit = -1
			for _, u := range units {
				if alloc[u] > 1 && (worst < 0 || rem[u] < rem[worst]) {
					worst = u
				}
			}
			alloc[worst]--
			rem[worst]++
			total--
		}
		p.Decode, p.Agen, p.Cache, p.Exec = alloc[UnitDecode], alloc[UnitAgen], alloc[UnitCache], alloc[UnitExec]
	}
	return p, nil
}

// MustPlanDepth is PlanDepth for known-good depths.
func MustPlanDepth(depth int) DepthPlan {
	p, err := PlanDepth(depth)
	if err != nil {
		panic(err)
	}
	return p
}

// Total returns the summed logic stages, which must equal Depth.
func (p DepthPlan) Total() int { return p.Decode + p.Agen + p.Cache + p.Exec }

// UnitStages returns the logic stage count assigned to the unit; the
// fixed-depth bookends and queues report 1.
func (p DepthPlan) UnitStages(u Unit) int {
	switch u {
	case UnitDecode:
		return p.Decode
	case UnitAgen:
		return p.Agen
	case UnitCache:
		return p.Cache
	case UnitExec:
		return p.Exec
	case UnitFPU:
		return max(1, p.Exec)
	default:
		return 1
	}
}

// MergeGroup returns the full stage group containing u (including u
// itself), aliasing the plan's own slice, or nil when u is unmerged.
// The allocation-free accessor for per-cycle and per-evaluation paths;
// callers must not mutate the returned slice.
//
//lint:hotpath called per unit per power evaluation, which runs per design point and per trace interval
func (p DepthPlan) MergeGroup(u Unit) []Unit {
	for _, g := range p.MergeGroups {
		for _, m := range g {
			if m == u {
				return g
			}
		}
	}
	return nil
}

// MergedWith returns the units sharing a stage group with u (excluding
// u itself).
func (p DepthPlan) MergedWith(u Unit) []Unit {
	for _, g := range p.MergeGroups {
		for _, m := range g {
			if m == u {
				var out []Unit
				for _, o := range g {
					if o != u {
						out = append(out, o)
					}
				}
				return out
			}
		}
	}
	return nil
}
