package pipeline

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/invariant"
	"repro/internal/trace"
)

// TestInvariantEngineCleanOnRealRuns attaches the invariant engine to
// real simulations across depths, modes and random traces and asserts
// the engine's laws all hold — zero violations on correct runs is the
// precondition for cmd/conformance exiting 0.
func TestInvariantEngineCleanOnRealRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, depth := range []int{MinSimDepth, 7, 19, 25} {
		for _, ooo := range []bool{false, true} {
			ins := randomTrace(rng, 800)
			rec := invariant.New(nil)
			mc := MustDefaultConfig(depth)
			mc.OutOfOrder = ooo
			mc.Invariants = rec
			if _, err := Run(mc, trace.NewSliceStream(ins)); err != nil {
				t.Fatalf("depth %d ooo %v: %v", depth, ooo, err)
			}
			if !rec.OK() {
				t.Errorf("depth %d ooo %v: %d violations, e.g. %v",
					depth, ooo, rec.Count(), rec.Violations()[0])
			}
		}
	}
}

// TestInvariantEngineDoesNotPerturbResults: a run with the engine
// attached must be bit-identical to the same run without it.
func TestInvariantEngineDoesNotPerturbResults(t *testing.T) {
	ins := randomTrace(rand.New(rand.NewSource(43)), 600)
	run := func(attach bool) ResultData {
		mc := MustDefaultConfig(11)
		if attach {
			mc.Invariants = invariant.New(nil)
		}
		r, err := Run(mc, trace.NewSliceStream(ins))
		if err != nil {
			t.Fatal(err)
		}
		return r.Data()
	}
	if a, b := run(false), run(true); !reflect.DeepEqual(a, b) {
		t.Fatalf("invariant engine perturbed the measurement:\noff: %+v\non:  %+v", a, b)
	}
}

// TestCheckResultInvariantsTripsOnMutations corrupts one law at a time
// in a genuine Result and asserts the corresponding rule fires — the
// self-test guaranteeing the checker can actually see violations.
func TestCheckResultInvariantsTripsOnMutations(t *testing.T) {
	base, err := Run(MustDefaultConfig(12), trace.NewSliceStream(randomTrace(rand.New(rand.NewSource(47)), 700)))
	if err != nil {
		t.Fatal(err)
	}
	if rec := invariant.New(nil); !CheckResultInvariants(rec, base) {
		t.Fatalf("baseline result not clean: %v", rec.Violations())
	}

	cases := []struct {
		name   string
		rule   string
		mutate func(r *Result)
	}{
		{"drop retirement", RuleConservation, func(r *Result) { r.UnitOps[UnitRetire]-- }},
		{"issue hist undercounts cycles", RuleIssueHist, func(r *Result) { r.IssueHist[0]-- }},
		{"issue cycles drift", RuleIssueHist, func(r *Result) { r.IssueCycles++ }},
		{"stall overflow", RuleStallBound, func(r *Result) { r.StallCycles[StallBranch] = r.Cycles + 1 }},
		{"unit active beyond run", RuleUnitActive, func(r *Result) { r.UnitActive[UnitExec] = r.Cycles + 1 }},
		{"branch accounting", RuleBranchAcct, func(r *Result) { r.PredictorCorrect++ }},
		{"taken exceeds branches", RuleBranchAcct, func(r *Result) { r.TakenBranches = r.Branches + 1 }},
		{"memory accounting", RuleMemoryAcct, func(r *Result) { r.LoadCount++ }},
		{"miss overflow", RuleMemoryAcct, func(r *Result) { r.L1Misses = r.UnitOps[UnitCache] + 1 }},
		{"window overflow", RuleWindow, func(r *Result) { r.MaxWindowOccupied = r.Config.WindowCap + 1 }},
		{"sample overflow", RuleSampleAcct, func(r *Result) {
			r.Samples = []ActivitySample{{Retired: r.Instructions + 1}}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mut := base.Data().Restore(base.Config)
			tc.mutate(mut)
			rec := invariant.New(nil)
			if CheckResultInvariants(rec, mut) {
				t.Fatal("mutation not detected")
			}
			found := false
			for _, rc := range rec.Summary() {
				if rc.Rule == tc.rule {
					found = true
				}
			}
			if !found {
				t.Fatalf("expected rule %s, got %+v", tc.rule, rec.Summary())
			}
		})
	}
}
