package pipeline

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"time"

	"repro/internal/cache"
	"repro/internal/invariant"
	"repro/internal/isa"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// never marks an unknown future cycle.
const never = math.MaxUint64

// watchdogCycles bounds cycles without forward progress before the
// engine reports a deadlock (an engine bug, not a workload property).
const watchdogCycles = 200000

// intLat is the forwarding latency of simple integer operations and
// of the completion pass of memory operations, in cycles. It does not
// scale with the E-pipe depth (see the RR case in issue).
const intLat = 1

// sim is the engine state for one run. The per-slot and per-unit
// state lives in flat struct-of-arrays (window, pipe in unit.go): the
// hot loop indexes contiguous arrays instead of chasing per-entry
// pointers.
type sim struct {
	cfg Config
	src trace.Stream
	res Result

	// psrc is the packed fast path: when the source stream is a
	// trace.PackedStream (and the per-cycle reference engine is not
	// forced), fetch advances it through a concrete, inlinable call
	// instead of the Stream interface.
	psrc *trace.PackedStream

	// Fused-loop state (fastsim.go): when fast is set the run executes
	// runFast, the window carries no record copies (w.in stays nil) and
	// all instruction fields are read from the packed columns fc,
	// indexed by sequence number.
	fc   trace.Columns
	fast bool

	// w is the in-flight window from decode entry to retirement.
	w window

	// Sequence-number cursors: retired ≤ issued ≤ decoded ≤ next.
	// decoded−issued is the execution-queue occupancy; next−retired is
	// the in-flight window.
	retired, issued, decoded, next uint64

	decodePipe pipe
	agenQ      pipe
	agenPipe   pipe
	cachePipe  pipe

	regReady [isa.NumRegs]uint64
	// lastWriter tracks the most recent issued producer of each
	// register, for stall classification and for guarding the
	// late regReady fix-up that loads perform at cache exit.
	lastWriter [isa.NumRegs]uint64
	haveWriter [isa.NumRegs]bool

	// Out-of-order state: the rename table maps each architected
	// register to its youngest renamed producer; pending holds the
	// decoded-but-unissued window in program order; inExecQ is the
	// window occupancy (valid in both modes).
	renameTable [isa.NumRegs]uint64
	haveRename  [isa.NumRegs]bool
	pending     []uint64
	inExecQ     int

	cycle           uint64
	iBusyUntil      uint64 // instruction-cache miss in progress
	lastFetchLine   uint64
	pendingBranch   uint64 // seq of unresolved mispredicted branch
	havePending     bool
	redirectHoldTo  uint64
	cacheBusyUntil  uint64
	fpuBusyUntil    uint64
	execActiveUntil uint64

	decTransit  uint64
	agenTransit uint64
	cacheT      uint64
	execLat     uint64

	traceDone    bool
	lastProgress uint64

	// Telemetry: tel mirrors cfg.Tracer; traceCycle caches whether the
	// current cycle is recorded (nil tracer or sampled-out cycles make
	// every emission site a single predictable branch).
	tel        *telemetry.Tracer
	traceCycle bool

	// inv mirrors cfg.Invariants; nil disables every invariant check
	// site behind a single branch.
	inv *invariant.Recorder

	// Interval-sampling state: the cumulative counters at the last
	// sample boundary.
	lastSampleActive [NumUnits]uint64
	lastSampleOps    [NumUnits]uint64
	lastSampleRet    uint64

	// Per-cycle flags for stall-episode and activity accounting.
	// active is a bitmask of units whose latches switched this cycle
	// (bit u = Unit u): the stages OR their bits in as they move, and
	// recordActivity folds in the in-transit and busy-until latch
	// activity. moved records whether any machine state changed at all
	// — the quiet-cycle test for skip-ahead.
	prevStall    StallCause
	prevWasStall bool
	active       uint32
	moved        bool
	fetchedNow   int
	retiredNow   int

	// Skip-ahead state (see skipahead.go): skip arms span
	// fast-forwarding; quiet marks a cycle in which no machine state
	// moved; lastBucket is the budget bucket of the last stall cycle,
	// for closed-form replication.
	skip       bool
	quiet      bool
	lastBucket CycleBucket
}

// Run simulates the stream to completion on the configured machine
// and returns the measured Result.
func Run(cfg Config, src trace.Stream) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	//lint:ignore detrange wall-clock manifest bookkeeping; never feeds a simulated figure
	start := time.Now()
	s := &sim{
		cfg:         cfg,
		src:         src,
		w:           makeWindow(cfg.WindowCap),
		decodePipe:  makePipe(max(1, cfg.Plan.Decode) * cfg.Width),
		agenQ:       makePipe(cfg.AgenQCap),
		agenPipe:    makePipe(max(1, cfg.Plan.Agen) * cfg.AgenWidth),
		cachePipe:   makePipe(max(1, cfg.Plan.Cache) * cfg.CachePorts),
		decTransit:  uint64(cfg.Plan.Decode + renameStages(cfg)),
		agenTransit: uint64(cfg.Plan.Agen),
		cacheT:      uint64(cfg.Plan.Cache),
		execLat:     uint64(max(1, cfg.Plan.Exec)),
		tel:         cfg.Tracer,
		inv:         cfg.Invariants,
	}
	if cfg.Engine != EnginePerCycle {
		if ps, ok := src.(*trace.PackedStream); ok {
			s.psrc = ps
		}
		// Skip-ahead is exact only when nothing observes individual
		// in-span cycles: no tracer, no per-cycle invariant checks, no
		// activity sampling. The out-of-order window re-scans pending
		// instructions per cycle, so only the in-order model skips.
		s.skip = !cfg.OutOfOrder && cfg.Invariants == nil &&
			cfg.Tracer == nil && cfg.SampleInterval == 0
	}
	if cfg.OutOfOrder {
		s.pending = make([]uint64, 0, cfg.WindowCap)
	}
	s.res.Config = cfg
	s.res.IssueHist = make([]uint64, cfg.Width+1)
	if cfg.Hierarchy != nil && !cfg.KeepState {
		cfg.Hierarchy.Reset()
	}

	if s.skip && s.psrc != nil {
		// Fused packed-trace loop: no per-cycle observers are attached,
		// so the engine reads the packed columns directly and the window
		// never materializes instruction records.
		if err := s.runFast(); err != nil {
			return nil, err
		}
	} else {
		s.w.in = make([]isa.Instruction, cfg.WindowCap)
		for {
			if s.traceDone && s.retired == s.next {
				break
			}
			s.cycle++
			if cfg.MaxCycles > 0 && s.cycle > cfg.MaxCycles {
				return nil, fmt.Errorf("pipeline: exceeded MaxCycles=%d", cfg.MaxCycles)
			}
			if s.cycle-s.lastProgress > watchdogCycles {
				return nil, errors.New("pipeline: no forward progress (engine deadlock)")
			}
			s.step()
			if s.skip && s.quiet && s.prevWasStall {
				s.skipAhead()
			}
		}
	}
	s.res.Cycles = s.cycle
	if s.inv != nil {
		s.checkRunInvariants()
	}
	s.res.Manifest = cfg.manifest()
	s.res.Manifest.Finish(start)
	if cfg.Metrics != nil {
		s.res.PublishMetrics(cfg.Metrics)
	}
	return &s.res, nil
}

// step advances the machine one cycle, processing stages back to
// front so an instruction traverses at most one stage per cycle.
//
//lint:hotpath the per-cycle simulator body, ROADMAP item 2 rewrite target; must not allocate
func (s *sim) step() {
	s.traceCycle = s.tel.CycleEnabled(s.cycle)
	s.active = 0
	s.moved = false
	s.fetchedNow, s.retiredNow = 0, 0
	wasDone := s.traceDone

	s.resolvePendingBranch()
	if s.retired < s.decoded {
		s.stepRetire()
	}
	s.stepIssue()
	if s.cachePipe.size > 0 {
		s.stepCacheExit()
	}
	if s.agenPipe.size > 0 {
		s.stepAgenAdvance()
	}
	if s.agenQ.size > 0 {
		s.stepAgenQ()
	}
	if s.decodePipe.size > 0 {
		s.stepDecodeExit()
	}
	s.stepFetch()
	s.recordActivity()
	if s.inv != nil {
		s.checkCycleInvariants()
	}

	if occ := int(s.next - s.retired); occ > s.res.MaxWindowOccupied {
		s.res.MaxWindowOccupied = occ
	}
	if iv := s.cfg.SampleInterval; iv > 0 && s.cycle%iv == 0 {
		s.takeSample()
	}
	// A quiet cycle mutated no machine state: nothing was fetched,
	// moved between stages, issued, retired or touched the cache, and
	// the trace-end transition did not fire. Only resolvePendingBranch
	// may have flipped havePending, and the post-resolution state is
	// itself stable — a quiet cycle's accounting therefore replicates
	// verbatim until the next time-gated threshold (see skipahead.go).
	s.quiet = !s.moved && s.traceDone == wasDone
}

// takeSample appends one interval of the activity trace.
func (s *sim) takeSample() {
	var sm ActivitySample
	sm.Cycle = s.cycle
	for u := 0; u < NumUnits; u++ {
		sm.UnitActive[u] = s.res.UnitActive[u] - s.lastSampleActive[u]
		sm.UnitOps[u] = s.res.UnitOps[u] - s.lastSampleOps[u]
		s.lastSampleActive[u] = s.res.UnitActive[u]
		s.lastSampleOps[u] = s.res.UnitOps[u]
	}
	sm.Retired = s.res.Instructions - s.lastSampleRet
	s.lastSampleRet = s.res.Instructions
	s.res.Samples = append(s.res.Samples, sm)
}

// resolvePendingBranch unfreezes the front end once the mispredicted
// branch has completed; fetch resumes the following cycle, so the
// refill sees the full decode-to-execute transit.
//
//lint:hotpath per-cycle branch resolution; must not allocate
func (s *sim) resolvePendingBranch() {
	if s.havePending && s.w.complete[s.w.idx(s.pendingBranch)] < s.cycle {
		s.havePending = false
	}
}

//lint:hotpath per-cycle retire stage; must not allocate
func (s *sim) stepRetire() {
	for s.retired < s.decoded && s.retiredNow < s.cfg.Width {
		i := s.w.idx(s.retired)
		if s.w.issuedAt[i] == never || s.w.complete[i] >= s.cycle {
			break
		}
		if s.traceCycle {
			s.traceInstr(telemetry.KindRetire, s.retired, &s.w.in[i])
		}
		s.retired++
		s.retiredNow++
		s.res.Instructions++
		s.res.UnitOps[UnitRetire]++
		s.lastProgress = s.cycle
	}
	if s.retiredNow > 0 {
		s.active |= 1 << UnitRetire
		s.moved = true
	}
}

// stepIssue issues up to Width instructions from the execution queue
// — strictly in program order for the in-order model, oldest-ready-
// first within the window for the out-of-order model — or classifies
// the stall.
//
//lint:hotpath per-cycle issue stage; must not allocate
func (s *sim) stepIssue() {
	if s.cfg.OutOfOrder {
		s.stepIssueOOO()
		return
	}
	issued, memIssued, brIssued := 0, 0, 0
	var cause StallCause
	blocked := false
	for issued < s.cfg.Width && s.issued < s.decoded {
		i := s.w.idx(s.issued)
		in := &s.w.in[i]
		// Structural issue-group limits: memory ops are bounded by the
		// cache ports, branches by the branch unit.
		if in.HasMemory() && memIssued >= s.cfg.CachePorts {
			break
		}
		if in.Class == isa.Branch && brIssued >= s.cfg.BranchWidth {
			break
		}
		if c, ok := s.blockCause(i); ok {
			cause, blocked = c, true
			break
		}
		s.issue(s.issued, i)
		s.issued++
		s.inExecQ--
		issued++
		if in.HasMemory() {
			memIssued++
		}
		if in.Class == isa.Branch {
			brIssued++
		}
		if in.Class == isa.FP {
			s.res.UnitOps[UnitFPU]++
		} else {
			s.res.UnitOps[UnitExec]++
		}
		s.active |= 1 << UnitExecQ
		s.moved = true
	}

	s.finishIssueAccounting(issued, cause, blocked)
}

// finishIssueAccounting updates issue statistics, the cycle budget and
// stall-episode counters after an issue attempt (shared by both issue
// disciplines). It runs exactly once per cycle, which is what makes
// the cycle budget exhaustive and exclusive: every cycle lands in
// exactly one bucket here.
//
//lint:hotpath per-cycle issue accounting; must not allocate
func (s *sim) finishIssueAccounting(issued int, cause StallCause, blocked bool) {
	if issued > 0 {
		s.res.IssueCycles++
		s.res.IssueHist[issued]++
		s.res.CycleBudget[BudgetUsefulIssue]++
		s.prevWasStall = false
		return
	}
	s.res.IssueHist[0]++
	if !blocked {
		// Execution queue empty: either the front end is frozen on a
		// mispredicted branch, or it simply has not delivered yet.
		if s.next == s.retired && s.traceDone {
			s.res.CycleBudget[BudgetDrain]++
			s.prevWasStall = false
			return // drained: not a stall
		}
		if s.havePending {
			cause = StallBranch
		} else {
			cause = StallFrontend
		}
	}
	bucket := budgetForStall(cause, s.cycle < s.iBusyUntil)
	s.res.CycleBudget[bucket]++
	s.lastBucket = bucket
	s.res.StallCycles[cause]++
	if s.traceCycle {
		s.tel.Emit(telemetry.Event{
			Cycle: s.cycle, Kind: telemetry.KindStall, Detail: uint8(cause),
		})
	}
	// Episode counting: a maximal run of equal-cause stall cycles is
	// one hazard event for the causes whose events are not counted
	// elsewhere (mispredicts and misses are counted at occurrence).
	if !s.prevWasStall || s.prevStall != cause {
		switch cause {
		case StallDependency:
			s.res.Hazards.DepEpisodes++
		case StallFP:
			s.res.Hazards.FPEpisodes++
		case StallAgen:
			s.res.Hazards.AgenEpisodes++
		}
	}
	s.prevWasStall = true
	s.prevStall = cause
}

// renameStages returns the extra front-end transit of the rename
// stage (out-of-order mode only).
func renameStages(cfg Config) int {
	if cfg.OutOfOrder {
		return 1
	}
	return 0
}

// stepIssueOOO selects up to Width ready instructions oldest-first
// from the pending (decoded-but-unissued) window, respecting the same
// structural limits as the in-order issue stage. Stall classification
// follows the oldest unissued instruction. The pending list is kept
// compact, so the per-cycle cost is bounded by the window capacity.
//
//lint:hotpath per-cycle issue stage (OOO); must not allocate
func (s *sim) stepIssueOOO() {
	issued, memIssued, brIssued := 0, 0, 0
	var cause StallCause
	blocked := false
	keep := s.pending[:0]
	for i, seq := range s.pending {
		wi := s.w.idx(seq)
		in := &s.w.in[wi]
		if issued >= s.cfg.Width {
			keep = append(keep, s.pending[i:]...)
			break
		}
		if in.HasMemory() && memIssued >= s.cfg.CachePorts {
			keep = append(keep, seq)
			continue
		}
		if in.Class == isa.Branch && brIssued >= s.cfg.BranchWidth {
			keep = append(keep, seq)
			continue
		}
		if c, ok := s.blockCauseOOO(wi); ok {
			if len(keep) == 0 && !blocked {
				cause, blocked = c, true
			}
			keep = append(keep, seq)
			continue
		}
		s.issue(seq, wi)
		s.inExecQ--
		issued++
		if in.HasMemory() {
			memIssued++
		}
		if in.Class == isa.Branch {
			brIssued++
		}
		if in.Class == isa.FP {
			s.res.UnitOps[UnitFPU]++
		} else {
			s.res.UnitOps[UnitExec]++
		}
		s.active |= 1 << UnitExecQ
		s.moved = true
	}
	s.pending = keep
	s.finishIssueAccounting(issued, cause, blocked)
}

// blockCauseOOO decides readiness from the producers captured at
// rename, resolved dynamically against the window.
//
//lint:hotpath per-instruction stall classification (OOO); must not allocate
func (s *sim) blockCauseOOO(i uint64) (StallCause, bool) {
	in := &s.w.in[i]
	if in.Class == isa.FP && s.fpuBusyUntil > s.cycle {
		return StallFP, true
	}
	if in.Class == isa.Load {
		return 0, false
	}
	if in.Class == isa.Store {
		if s.w.wflags[i]&wHasSrc1 != 0 {
			if t := s.writerReady(s.w.src1Writer[i]); t > s.cycle {
				return s.classifyWriter(s.w.src1Writer[i]), true
			}
		}
		return 0, false
	}
	if in.Class == isa.RX {
		if s.w.dataReady[i] == never {
			return StallAgen, true
		}
		if s.w.dataReady[i] > s.cycle {
			return StallMemory, true
		}
		if s.w.wflags[i]&wHasSrc1 != 0 {
			if t := s.writerReady(s.w.src1Writer[i]); t > s.cycle {
				return s.classifyWriter(s.w.src1Writer[i]), true
			}
		}
		return 0, false
	}
	if s.w.wflags[i]&wHasSrc1 != 0 {
		if t := s.writerReady(s.w.src1Writer[i]); t > s.cycle {
			return s.classifyWriter(s.w.src1Writer[i]), true
		}
	}
	if s.w.wflags[i]&wHasSrc2 != 0 {
		if t := s.writerReady(s.w.src2Writer[i]); t > s.cycle {
			return s.classifyWriter(s.w.src2Writer[i]), true
		}
	}
	return 0, false
}

// classifyWriter attributes a wait on the given producer.
//
//lint:hotpath per-writer stall classification; must not allocate
func (s *sim) classifyWriter(seq uint64) StallCause {
	if seq < s.retired {
		return StallDependency
	}
	p := s.w.idx(seq)
	if s.w.seq[p] != seq {
		return StallDependency
	}
	if s.w.in[p].Class == isa.Load {
		if s.w.dataReady[p] == never {
			return StallAgen
		}
		if s.w.dataReady[p] > s.cycle {
			return StallMemory
		}
	}
	return StallDependency
}

// blockCause reports why the window-slot-i head instruction cannot
// issue, if it cannot. Loads and stores issue without waiting for
// their own data (the machine is access-decoupled: address generation
// and cache access run ahead of the execution queue, per Fig. 2); only
// true consumers of in-flight data stall.
//
//lint:hotpath per-instruction stall classification; must not allocate
func (s *sim) blockCause(i uint64) (StallCause, bool) {
	in := &s.w.in[i]
	if in.Class == isa.Load {
		return 0, false
	}
	if in.Class == isa.Store {
		if s.regReady[in.Src1] > s.cycle { // store data not ready
			return s.classifyDep(in.Src1), true
		}
		return 0, false
	}
	if in.Class == isa.RX {
		// The memory operand must have arrived and the register
		// operand must be ready: the zSeries RX op computes at issue.
		if s.w.dataReady[i] == never {
			return StallAgen, true
		}
		if s.w.dataReady[i] > s.cycle {
			return StallMemory, true
		}
		if s.regReady[in.Src1] > s.cycle {
			return s.classifyDep(in.Src1), true
		}
		return 0, false
	}
	if in.Class == isa.FP && s.fpuBusyUntil > s.cycle {
		return StallFP, true
	}
	if in.Src1 != isa.RegNone && s.regReady[in.Src1] > s.cycle {
		return s.classifyDep(in.Src1), true
	}
	if in.Src2 != isa.RegNone && s.regReady[in.Src2] > s.cycle {
		return s.classifyDep(in.Src2), true
	}
	return 0, false
}

// classifyDep attributes a wait on register r to its producer: a load
// still in the address path is an agen stall, a load waiting on a
// cache miss is a memory stall, anything else is a plain dependency.
//
//lint:hotpath per-operand stall classification; must not allocate
func (s *sim) classifyDep(r isa.Reg) StallCause {
	if !s.haveWriter[r] {
		return StallDependency
	}
	p := s.w.idx(s.lastWriter[r])
	if s.w.in[p].Class == isa.Load {
		if s.w.dataReady[p] == never {
			return StallAgen
		}
		if s.w.dataReady[p] > s.cycle {
			return StallMemory
		}
	}
	return StallDependency
}

// issue starts execution of the instruction in window slot i at the
// current cycle.
//
//lint:hotpath per-instruction issue bookkeeping; must not allocate
func (s *sim) issue(seq, i uint64) {
	in := &s.w.in[i]
	s.w.issuedAt[i] = s.cycle
	if s.traceCycle {
		s.traceInstr(telemetry.KindIssue, seq, in)
	}
	switch in.Class {
	case isa.FP:
		// Unpipelined: the FPU is occupied for the full latency (at
		// least the E-pipe transit).
		lat := uint64(in.FPLat)
		if lat < s.execLat {
			lat = s.execLat
		}
		complete := s.cycle + lat
		s.w.complete[i] = complete
		s.fpuBusyUntil = complete
		s.regReady[in.Dst] = complete
		s.lastWriter[in.Dst] = seq
		s.haveWriter[in.Dst] = true
	case isa.Load:
		// The consumer-visible ready time is the cache data arrival;
		// completion additionally includes the E-unit pass.
		if s.w.dataReady[i] == never {
			s.w.complete[i] = never
		} else {
			s.w.complete[i] = max(s.cycle+intLat, s.w.dataReady[i])
			s.execActiveUntil = max(s.execActiveUntil, s.cycle+intLat)
		}
		s.regReady[in.Dst] = s.w.dataReady[i]
		s.lastWriter[in.Dst] = seq
		s.haveWriter[in.Dst] = true
	case isa.Store:
		if s.w.dataReady[i] == never {
			s.w.complete[i] = never
		} else {
			s.w.complete[i] = max(s.cycle+intLat, s.w.dataReady[i])
		}
		s.execActiveUntil = max(s.execActiveUntil, s.cycle+intLat)
	case isa.RX:
		// Operands arrived (memory at dataReady, register checked at
		// issue): the compute itself is a one-cycle ALU pass.
		complete := s.cycle + intLat
		s.w.complete[i] = complete
		s.regReady[in.Dst] = complete
		s.lastWriter[in.Dst] = seq
		s.haveWriter[in.Dst] = true
		s.execActiveUntil = max(s.execActiveUntil, complete)
	case isa.Branch:
		// Branches resolve at the end of the E-unit pipe: the
		// misprediction penalty grows with the pipeline depth.
		complete := s.cycle + s.execLat
		s.w.complete[i] = complete
		s.execActiveUntil = max(s.execActiveUntil, complete)
	default: // RR
		// Simple ALU results forward in one cycle independent of the
		// E-pipe depth — deep real designs keep the common ALU loop
		// single-cycle with aggressive bypassing (staggered ALUs);
		// only branch resolution, FP and memory pay the added stages.
		complete := s.cycle + intLat
		s.w.complete[i] = complete
		s.regReady[in.Dst] = complete
		s.lastWriter[in.Dst] = seq
		s.haveWriter[in.Dst] = true
		s.execActiveUntil = max(s.execActiveUntil, complete)
	}
}

// stepCacheExit completes cache accesses for memory operations leaving
// the cache pipe. Load misses block the cache (no MSHRs, as in the
// era's blocking L1 designs); stores retire into a store buffer and
// never block.
//
//lint:hotpath per-cycle cache-exit stage; must not allocate
func (s *sim) stepCacheExit() {
	for ports := 0; ports < s.cfg.CachePorts && !s.cachePipe.empty(); ports++ {
		if s.cycle < s.cacheBusyUntil {
			break
		}
		if s.cycle-s.cachePipe.headAt() < s.cacheT {
			break
		}
		seq, _ := s.cachePipe.pop()
		i := s.w.idx(seq)
		in := &s.w.in[i]
		s.active |= 1 << UnitCache
		s.moved = true
		s.res.UnitOps[UnitCache]++

		level, latFO4 := cache.L1, 0.0
		if s.cfg.Hierarchy != nil {
			level, latFO4 = s.cfg.Hierarchy.Access(in.Addr)
		}
		extra := uint64(0)
		if level != cache.L1 {
			s.res.L1Misses++
			extra = s.cfg.LatencyCycles(latFO4)
		}
		if in.Class != isa.Store {
			if in.Class == isa.Load {
				s.res.LoadCount++
			} else {
				s.res.RXCount++
			}
			s.w.dataReady[i] = s.cycle + extra
			if extra > 0 {
				if level == cache.L2 {
					s.res.Hazards.LoadL2Hits++
				} else {
					// Only memory accesses block the (otherwise
					// pipelined) cache port; L2 hits stream. With
					// MSHRs (NonBlockingCache) misses overlap freely.
					s.res.Hazards.LoadMemAccesses++
					if !s.cfg.NonBlockingCache {
						s.cacheBusyUntil = s.cycle + extra
					}
				}
			}
		} else {
			s.res.StoreCount++
			s.w.dataReady[i] = s.cycle
		}
		// Late fix-up for memory ops that issued before their data
		// arrived: completion and (for loads that are still the
		// youngest writer of their register) consumer visibility.
		if s.w.issuedAt[i] != never {
			s.w.complete[i] = max(s.w.issuedAt[i]+intLat, s.w.dataReady[i])
		}
		if in.Class == isa.Load &&
			s.haveWriter[in.Dst] && s.lastWriter[in.Dst] == seq {
			s.regReady[in.Dst] = s.w.dataReady[i]
		}
	}
}

// stepAgenAdvance moves address-generated operations into the cache
// pipe.
//
//lint:hotpath per-cycle agen advance; must not allocate
func (s *sim) stepAgenAdvance() {
	for moved := 0; moved < s.cfg.AgenWidth && !s.agenPipe.empty(); moved++ {
		if s.cycle-s.agenPipe.headAt() < s.agenTransit {
			break
		}
		if s.cachePipe.full() {
			break
		}
		seq, _ := s.agenPipe.pop()
		s.cachePipe.push(seq, s.cycle)
		s.active |= 1 << UnitAgen
		s.moved = true
		s.res.UnitOps[UnitAgen]++
	}
}

// stepAgenQ launches queued memory operations into address generation
// once their base registers are ready (in order).
//
//lint:hotpath per-cycle agen-queue stage; must not allocate
func (s *sim) stepAgenQ() {
	for moved := 0; moved < s.cfg.AgenWidth && !s.agenQ.empty(); moved++ {
		seq := s.agenQ.headSeq()
		i := s.w.idx(seq)
		// The base producer was captured at decode exit, so the
		// address path runs fully decoupled from issue in both modes.
		if s.w.wflags[i]&wHasBase != 0 {
			if t := s.writerReady(s.w.baseWriter[i]); t == never || t > s.cycle {
				break
			}
		}
		if s.agenPipe.full() {
			break
		}
		s.agenQ.pop()
		s.agenPipe.push(seq, s.cycle)
		s.active |= 1 << UnitAgenQ
		s.moved = true
		s.res.UnitOps[UnitAgenQ]++
	}
}

// stepDecodeExit routes decoded instructions into the execution queue
// (and memory operations additionally into the address queue).
//
//lint:hotpath per-cycle decode-exit stage; must not allocate
func (s *sim) stepDecodeExit() {
	for moved := 0; moved < s.cfg.Width && !s.decodePipe.empty(); moved++ {
		if s.cycle-s.decodePipe.headAt() < s.decTransit {
			break
		}
		if s.inExecQ >= s.cfg.ExecQCap {
			break
		}
		seq := s.decodePipe.headSeq()
		i := s.w.idx(seq)
		hasMem := s.w.in[i].HasMemory()
		if hasMem && s.agenQ.full() {
			break
		}
		s.decodePipe.pop()
		s.rename(seq, i)
		if hasMem {
			s.agenQ.push(seq, s.cycle)
			s.active |= 1 << UnitAgenQ
		}
		s.decoded++
		s.inExecQ++
		if s.cfg.OutOfOrder {
			//lint:ignore allocfree pending is preallocated to WindowCap in Run and occupancy never exceeds the window, so this append cannot grow
			s.pending = append(s.pending, seq)
		}
		s.res.UnitOps[UnitDecode]++
		s.res.UnitOps[UnitExecQ]++
		s.active |= 1 << UnitExecQ
		s.moved = true
	}
}

// stepFetch brings new instructions from the trace into decode,
// consulting the branch predictor and freezing on mispredictions (the
// machine does not fetch down the wrong path; the freeze lasts until
// the branch resolves, which reproduces the misprediction penalty
// exactly).
//
//lint:hotpath per-cycle fetch stage; must not allocate
func (s *sim) stepFetch() {
	if s.havePending || s.traceDone || s.cycle < s.redirectHoldTo {
		return
	}
	if s.cycle < s.iBusyUntil {
		return
	}
	for s.fetchedNow < s.cfg.Width {
		if s.next-s.retired >= s.w.num {
			break
		}
		if s.decodePipe.full() {
			break
		}
		// Materialize the next record straight into the window slot it
		// will occupy: the packed fast path writes the SoA columns into
		// the slot with no intermediate copy.
		i := s.w.idx(s.next)
		in := &s.w.in[i]
		if s.psrc != nil {
			if !s.psrc.NextInto(in) {
				s.traceDone = true
				break
			}
		} else {
			v, ok := s.src.Next()
			if !ok {
				s.traceDone = true
				break
			}
			*in = v
		}
		// Instruction-cache model: a new code line must be resident;
		// a miss stalls fetch for the configured time.
		if s.cfg.ICache != nil {
			line := in.PC &^ 63
			if line != s.lastFetchLine {
				s.lastFetchLine = line
				if !s.cfg.ICache.Access(in.PC) {
					s.res.ICacheMisses++
					s.iBusyUntil = s.cycle + s.cfg.LatencyCycles(s.cfg.ICacheMissFO4)
				}
			}
		}
		seq := s.next
		s.next++
		s.lastProgress = s.cycle
		s.w.seq[i] = seq
		s.w.dataReady[i] = never
		s.w.issuedAt[i] = never
		s.w.complete[i] = never
		s.w.wflags[i] = 0
		if s.traceCycle {
			s.traceInstr(telemetry.KindFetch, seq, in)
		}
		s.decodePipe.push(seq, s.cycle)
		s.fetchedNow++
		s.res.UnitOps[UnitFetch]++

		if in.Class == isa.Branch {
			s.res.Branches++
			if in.Taken {
				s.res.TakenBranches++
			}
			pred := in.Taken
			if s.cfg.Predictor != nil {
				pred = s.cfg.Predictor.Predict(in.PC)
				s.cfg.Predictor.Update(in.PC, in.Taken)
			}
			if pred == in.Taken {
				s.res.PredictorCorrect++
				if in.Taken {
					hold := uint64(0)
					if s.cfg.RedirectBubble {
						// Correctly predicted taken branch: one-cycle
						// fetch redirect bubble.
						hold = 1
					}
					// The redirect needs the target: a BTB miss holds
					// fetch until decode computes it.
					if s.cfg.BTB != nil {
						if _, hit := s.cfg.BTB.Lookup(in.PC); !hit {
							s.res.BTBMisses++
							hold += uint64(s.cfg.BTBMissBubbles)
						}
						s.cfg.BTB.Update(in.PC, in.Target)
					}
					if hold > 0 {
						s.redirectHoldTo = s.cycle + 1 + hold
						break
					}
				}
			} else {
				s.res.Hazards.BranchMispredicts++
				s.pendingBranch = seq
				s.havePending = true
				break
			}
		}
	}
	if s.fetchedNow > 0 {
		s.active |= 1 << UnitFetch
		s.moved = true
	}
}

// recordActivity accumulates per-unit switching activity for the
// power monitor: a unit is active on a cycle when its latches clock
// new values (instructions advanced through it). With
// WrongPathActivity, misprediction-recovery cycles charge the front
// end at full rate (wrong-path fetch and decode).
//
//lint:hotpath per-cycle activity accounting; must not allocate
func (s *sim) recordActivity() {
	a := s.active
	if s.cfg.WrongPathActivity && s.havePending {
		a |= 1<<UnitFetch | 1<<UnitDecode
		s.res.UnitOps[UnitFetch] += uint64(s.cfg.Width)
		s.res.UnitOps[UnitDecode] += uint64(s.cfg.Width)
		if s.cfg.OutOfOrder {
			a |= 1 << UnitRename
			s.res.UnitOps[UnitRename] += uint64(s.cfg.Width)
		}
	}
	if s.decodePipe.anyMoving(s.cycle, s.decTransit) {
		a |= 1 << UnitDecode
	}
	if s.agenTransit > 0 && s.agenPipe.anyMoving(s.cycle, s.agenTransit) {
		a |= 1 << UnitAgen
	}
	if s.cachePipe.anyMoving(s.cycle, s.cacheT) {
		a |= 1 << UnitCache
	}
	if s.cycle < s.execActiveUntil {
		a |= 1 << UnitExec
	}
	if s.cycle < s.fpuBusyUntil {
		a |= 1 << UnitFPU
	}
	s.active = a
	for m := a; m != 0; m &= m - 1 {
		s.res.UnitActive[bits.TrailingZeros32(m)]++
	}
	if s.traceCycle {
		s.traceGate()
	}
}

// rename records producers in the decode-time writer table. In both
// execution modes, memory operations capture their base-register
// producer here — decode exit is exact for that purpose: every older
// instruction has already claimed its destination, no younger one has
// — which lets the address path run decoupled from issue. In
// out-of-order mode the full source operands are captured too (the
// register-renaming step proper), eliminating WAW and WAR hazards.
//
//lint:hotpath runs at decode exit for every instruction; must not allocate
func (s *sim) rename(seq, i uint64) {
	in := &s.w.in[i]
	if in.HasMemory() {
		if w, ok := s.captureWriter(in.BaseReg()); ok {
			s.w.baseWriter[i] = w
			s.w.wflags[i] |= wHasBase
		}
	}
	if s.cfg.OutOfOrder {
		switch in.Class {
		case isa.Store, isa.RX:
			if w, ok := s.captureWriter(in.Src1); ok {
				s.w.src1Writer[i] = w
				s.w.wflags[i] |= wHasSrc1
			}
		case isa.RR, isa.FP, isa.Branch:
			if w, ok := s.captureWriter(in.Src1); ok {
				s.w.src1Writer[i] = w
				s.w.wflags[i] |= wHasSrc1
			}
			if w, ok := s.captureWriter(in.Src2); ok {
				s.w.src2Writer[i] = w
				s.w.wflags[i] |= wHasSrc2
			}
		}
		s.res.UnitOps[UnitRename]++
		s.active |= 1 << UnitRename
	}
	if in.WritesReg() {
		s.renameTable[in.Dst] = seq
		s.haveRename[in.Dst] = true
	}
}

// captureWriter looks up the youngest in-flight producer of r in the
// rename table. A method rather than a closure inside rename, so the
// decode-exit path stays visibly closure-free and the allocfree
// analyzer can vouch for it.
//
//lint:hotpath called up to three times per renamed instruction; must not allocate
func (s *sim) captureWriter(r isa.Reg) (uint64, bool) {
	if r == isa.RegNone || !s.haveRename[r] {
		return 0, false
	}
	return s.renameTable[r], true
}

// writerReady returns when the result of the instruction with the
// given sequence number becomes readable, or 0 if it has already
// retired (its window slot may have been reused).
//
//lint:hotpath called per ready-check during issue; must not allocate
func (s *sim) writerReady(seq uint64) uint64 {
	if seq < s.retired {
		return 0
	}
	i := s.w.idx(seq)
	if s.w.seq[i] != seq {
		return 0
	}
	if s.slotClass(i) == isa.Load {
		return s.w.dataReady[i]
	}
	return s.w.complete[i]
}
