package pipeline

import (
	"fmt"
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

// The simulator is fully deterministic, so exact cycle counts act as a
// behavioral checksum: any engine change that alters timing — even by
// one cycle — trips this test. When a change is *intentional* (a
// modeling improvement or recalibration), regenerate the table by
// running the test with -run TestRegressionDigest -v and copying the
// printed rows.
var regressionDigest = map[string]uint64{
	"si95-gcc/d10/inorder":  15063,
	"si95-gcc/d10/ooo":      13556,
	"si95-gcc/d25/inorder":  29205,
	"oltp-bank/d10/inorder": 17794,
	"sf-swim/d10/inorder":   30548,
	"sf-swim/d2/inorder":    18615,
}

func digestKey(wl string, depth int, ooo bool) string {
	mode := "inorder"
	if ooo {
		mode = "ooo"
	}
	return fmt.Sprintf("%s/d%d/%s", wl, depth, mode)
}

func TestRegressionDigest(t *testing.T) {
	run := func(wl string, depth int, ooo bool) uint64 {
		prof, ok := workload.ByName(wl)
		if !ok {
			t.Fatalf("unknown workload %s", wl)
		}
		g := workload.MustGenerator(prof)
		cfg := MustDefaultConfig(depth)
		cfg.OutOfOrder = ooo
		r, err := Run(cfg, trace.NewLimitStream(g, 10000))
		if err != nil {
			t.Fatal(err)
		}
		return r.Cycles
	}
	cases := []struct {
		wl    string
		depth int
		ooo   bool
	}{
		{"si95-gcc", 10, false},
		{"si95-gcc", 10, true},
		{"si95-gcc", 25, false},
		{"oltp-bank", 10, false},
		{"sf-swim", 10, false},
		{"sf-swim", 2, false},
	}
	for _, c := range cases {
		key := digestKey(c.wl, c.depth, c.ooo)
		got := run(c.wl, c.depth, c.ooo)
		t.Logf("%q: %d,", key, got)
		want, ok := regressionDigest[key]
		if !ok {
			t.Errorf("missing digest entry %q (measured %d)", key, got)
			continue
		}
		if got != want {
			t.Errorf("%s: %d cycles, digest says %d — engine behaviour changed; "+
				"if intentional, update regressionDigest", key, got, want)
		}
	}
}
