package pipeline

import (
	"fmt"
	"strings"

	"repro/internal/telemetry"
)

// StallCause classifies why the issue stage made no progress on a
// cycle with work in flight.
type StallCause int

// Stall causes, in reporting order.
const (
	// StallBranch: the front end is frozen waiting for a mispredicted
	// branch to resolve.
	StallBranch StallCause = iota
	// StallFrontend: the execution queue is empty because the decode
	// pipeline has not delivered (pipeline fill, redirect bubbles,
	// queue backpressure upstream).
	StallFrontend
	// StallAgen: the head instruction is a memory op still in the
	// address-generation/cache pipeline.
	StallAgen
	// StallMemory: the head instruction waits on a cache miss.
	StallMemory
	// StallDependency: the head instruction's source operands are not
	// ready.
	StallDependency
	// StallFP: the head instruction needs the busy (unpipelined) FPU.
	StallFP

	numStallCauses = iota
)

// NumStallCauses is the number of stall classifications.
const NumStallCauses = int(numStallCauses)

// String names the cause.
func (s StallCause) String() string {
	switch s {
	case StallBranch:
		return "branch"
	case StallFrontend:
		return "frontend"
	case StallAgen:
		return "agen"
	case StallMemory:
		return "memory"
	case StallDependency:
		return "dependency"
	case StallFP:
		return "fp"
	default:
		return fmt.Sprintf("StallCause(%d)", int(s))
	}
}

// HazardCounts tallies hazard events — the N_H of the analytical
// model. Events count occurrences, not cycles: one mispredicted
// branch, one missing load, one dependency episode each count once.
type HazardCounts struct {
	BranchMispredicts uint64
	LoadL2Hits        uint64 // loads satisfied in L2
	LoadMemAccesses   uint64 // loads that went to memory
	DepEpisodes       uint64 // maximal runs of dependency-stall cycles
	FPEpisodes        uint64 // maximal runs of FPU-structural stalls
	AgenEpisodes      uint64 // maximal runs of address-path stalls
}

// Total returns the total hazard event count N_H.
func (h HazardCounts) Total() uint64 {
	return h.BranchMispredicts + h.LoadL2Hits + h.LoadMemAccesses +
		h.DepEpisodes + h.FPEpisodes + h.AgenEpisodes
}

// ActivitySample is one interval of the cycle-resolved activity
// trace: cumulative-to-interval deltas of unit activity and work.
type ActivitySample struct {
	Cycle      uint64           // end of the interval
	UnitActive [NumUnits]uint64 // active cycles within the interval
	UnitOps    [NumUnits]uint64 // instructions processed within the interval
	Retired    uint64           // instructions retired within the interval
}

// Result is the outcome of one simulation run.
type Result struct {
	Config Config

	// Manifest records the run's provenance: configuration hash, key
	// parameters, wall time and toolchain, stamped by Run on every
	// result for reproducibility.
	Manifest telemetry.Manifest

	Instructions uint64 // retired instructions N_I
	Cycles       uint64 // total cycles T (in cycles)

	IssueCycles uint64   // cycles in which ≥1 instruction issued
	IssueHist   []uint64 // [0..Width] instructions issued per cycle
	StallCycles [NumStallCauses]uint64
	// CycleBudget attributes every cycle of the run to exactly one
	// CycleBucket; the buckets sum to Cycles (RuleCycleBudget).
	CycleBudget [NumCycleBuckets]uint64
	Hazards     HazardCounts

	Branches          uint64
	TakenBranches     uint64
	PredictorCorrect  uint64
	LoadCount         uint64
	RXCount           uint64
	StoreCount        uint64
	L1Misses          uint64           // demand load+store L1 misses
	ICacheMisses      uint64           // instruction-line misses (ICache configured)
	BTBMisses         uint64           // taken-branch target misses (BTB configured)
	UnitActive        [NumUnits]uint64 // cycles each unit switched at all
	UnitOps           [NumUnits]uint64 // instructions processed per unit
	Samples           []ActivitySample // interval trace (SampleInterval > 0)
	MaxWindowOccupied int
}

// CycleTimeFO4 returns the cycle time of the simulated configuration.
func (r *Result) CycleTimeFO4() float64 { return r.Config.CycleTime() }

// TimeFO4 returns total execution time in FO4.
func (r *Result) TimeFO4() float64 { return float64(r.Cycles) * r.CycleTimeFO4() }

// TimePerInstructionFO4 returns τ = T/N_I in FO4 — directly comparable
// to the analytical model's Eq. 1.
func (r *Result) TimePerInstructionFO4() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return r.TimeFO4() / float64(r.Instructions)
}

// BIPS returns instructions per FO4 of time, the simulator's
// performance measure (absolute scale arbitrary, as in the paper).
func (r *Result) BIPS() float64 {
	t := r.TimePerInstructionFO4()
	if t == 0 {
		return 0
	}
	return 1 / t
}

// IPC returns retired instructions per cycle.
func (r *Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// Alpha returns the measured degree of superscalar processing α:
// instructions issued per issuing cycle.
func (r *Result) Alpha() float64 {
	if r.IssueCycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.IssueCycles)
}

// TotalStallCycles sums stall cycles over all causes.
func (r *Result) TotalStallCycles() uint64 {
	var t uint64
	for _, c := range r.StallCycles {
		t += c
	}
	return t
}

// HazardRate returns N_H/N_I, hazards per instruction.
func (r *Result) HazardRate() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.Hazards.Total()) / float64(r.Instructions)
}

// Gamma returns the measured γ: the average fraction of the pipeline
// stalled per hazard, i.e. stall cycles per hazard divided by the
// pipeline depth.
func (r *Result) Gamma() float64 {
	nh := r.Hazards.Total()
	if nh == 0 {
		return 0
	}
	return float64(r.TotalStallCycles()) / float64(nh) / float64(r.Config.Plan.Depth)
}

// UnitWidth returns the processing capacity (instructions per cycle)
// of the unit in this configuration, used to occupancy-weight gated
// power.
func (r *Result) UnitWidth(u Unit) int {
	switch u {
	case UnitAgenQ, UnitAgen:
		return r.Config.AgenWidth
	case UnitCache:
		return r.Config.CachePorts
	case UnitFPU:
		return 1
	default:
		return r.Config.Width
	}
}

// UnitUtilization returns the fraction of the unit's slots that
// carried instructions over the run (the fine-grained clock-gating
// duty factor). The unpipelined FPU reports its busy-cycle fraction.
func (r *Result) UnitUtilization(u Unit) float64 {
	if r.Cycles == 0 {
		return 0
	}
	if u == UnitFPU {
		return float64(r.UnitActive[u]) / float64(r.Cycles)
	}
	util := float64(r.UnitOps[u]) / (float64(r.Cycles) * float64(r.UnitWidth(u)))
	if util > 1 {
		util = 1
	}
	return util
}

// MispredictRate returns mispredicted branches per branch.
func (r *Result) MispredictRate() float64 {
	if r.Branches == 0 {
		return 0
	}
	return float64(r.Hazards.BranchMispredicts) / float64(r.Branches)
}

// String renders a multi-line report.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "depth=%d ts=%.2f FO4  N_I=%d cycles=%d IPC=%.3f BIPS=%.5f\n",
		r.Config.Plan.Depth, r.CycleTimeFO4(), r.Instructions, r.Cycles, r.IPC(), r.BIPS())
	fmt.Fprintf(&b, "alpha=%.3f N_H/N_I=%.4f gamma=%.3f stalls=%d\n",
		r.Alpha(), r.HazardRate(), r.Gamma(), r.TotalStallCycles())
	for c := 0; c < NumStallCauses; c++ {
		if r.StallCycles[c] > 0 {
			fmt.Fprintf(&b, "  stall[%s]=%d\n", StallCause(c), r.StallCycles[c])
		}
	}
	fmt.Fprintf(&b, "branches=%d taken=%d mispredict=%.2f%% loads=%d L1miss=%d\n",
		r.Branches, r.TakenBranches, 100*r.MispredictRate(), r.LoadCount, r.L1Misses)
	return b.String()
}

// UtilizationReport renders a per-unit table of stage counts, active
// cycles and slot utilization — the view of the machine the power
// monitor prices.
func (r *Result) UtilizationReport() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %6s %10s %8s %8s\n", "unit", "stages", "ops", "active%", "util%")
	for u := 0; u < NumUnits; u++ {
		unit := Unit(u)
		active := 0.0
		if r.Cycles > 0 {
			active = 100 * float64(r.UnitActive[u]) / float64(r.Cycles)
		}
		fmt.Fprintf(&b, "%-8s %6d %10d %7.1f%% %7.1f%%\n",
			unit, r.Config.Plan.UnitStages(unit), r.UnitOps[u],
			active, 100*r.UnitUtilization(unit))
	}
	return b.String()
}
