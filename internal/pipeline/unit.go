// Package pipeline implements the cycle-accurate simulator of the
// paper's 4-issue in-order superscalar machine (Fig. 2): instructions
// flow through Decode → (memory ops: AgenQ → Agen → Cache) → ExecQ →
// Exec/FPU → Complete → Retire. The pipeline depth between decode and
// execute is configurable from 2 to 40 stages; extra stages are added
// "uniformly" to Decode, Cache and the E-unit as the paper prescribes,
// and at very short depths adjacent units merge into shared stages.
//
// The simulator counts cycles exactly under its stated
// microarchitectural rules, attributes every stall cycle to a hazard
// cause, counts hazard events (the N_H of the analytical model), and
// records per-unit switching activity every cycle for the power
// monitor in package power.
package pipeline

import "fmt"

// Unit identifies one microarchitectural unit for depth planning and
// power accounting.
type Unit int

// The simulator's units. Fetch and Retire are fixed-depth bookends;
// Decode, Agen, Cache and Exec are the expandable logic units whose
// stage counts sum to the pipeline depth; Rename is the one-stage
// register renamer (active only for out-of-order execution — the
// in-order model skips it, as the paper's does); AgenQ and ExecQ are
// decoupling buffers; FPU is the unpipelined floating-point unit.
const (
	UnitFetch Unit = iota
	UnitDecode
	UnitRename
	UnitAgenQ
	UnitAgen
	UnitCache
	UnitExecQ
	UnitExec
	UnitFPU
	UnitRetire

	numUnits = iota
)

// NumUnits is the number of modeled units.
const NumUnits = int(numUnits)

// String names the unit.
func (u Unit) String() string {
	switch u {
	case UnitFetch:
		return "fetch"
	case UnitDecode:
		return "decode"
	case UnitRename:
		return "rename"
	case UnitAgenQ:
		return "agenq"
	case UnitAgen:
		return "agen"
	case UnitCache:
		return "cache"
	case UnitExecQ:
		return "execq"
	case UnitExec:
		return "exec"
	case UnitFPU:
		return "fpu"
	case UnitRetire:
		return "retire"
	default:
		return fmt.Sprintf("Unit(%d)", int(u))
	}
}
