// Package pipeline implements the cycle-accurate simulator of the
// paper's 4-issue in-order superscalar machine (Fig. 2): instructions
// flow through Decode → (memory ops: AgenQ → Agen → Cache) → ExecQ →
// Exec/FPU → Complete → Retire. The pipeline depth between decode and
// execute is configurable from 2 to 40 stages; extra stages are added
// "uniformly" to Decode, Cache and the E-unit as the paper prescribes,
// and at very short depths adjacent units merge into shared stages.
//
// The simulator counts cycles exactly under its stated
// microarchitectural rules, attributes every stall cycle to a hazard
// cause, counts hazard events (the N_H of the analytical model), and
// records per-unit switching activity every cycle for the power
// monitor in package power.
package pipeline

import (
	"fmt"

	"repro/internal/isa"
)

// Unit identifies one microarchitectural unit for depth planning and
// power accounting.
type Unit int

// The simulator's units. Fetch and Retire are fixed-depth bookends;
// Decode, Agen, Cache and Exec are the expandable logic units whose
// stage counts sum to the pipeline depth; Rename is the one-stage
// register renamer (active only for out-of-order execution — the
// in-order model skips it, as the paper's does); AgenQ and ExecQ are
// decoupling buffers; FPU is the unpipelined floating-point unit.
const (
	UnitFetch Unit = iota
	UnitDecode
	UnitRename
	UnitAgenQ
	UnitAgen
	UnitCache
	UnitExecQ
	UnitExec
	UnitFPU
	UnitRetire

	numUnits = iota
)

// NumUnits is the number of modeled units.
const NumUnits = int(numUnits)

// String names the unit.
func (u Unit) String() string {
	switch u {
	case UnitFetch:
		return "fetch"
	case UnitDecode:
		return "decode"
	case UnitRename:
		return "rename"
	case UnitAgenQ:
		return "agenq"
	case UnitAgen:
		return "agen"
	case UnitCache:
		return "cache"
	case UnitExecQ:
		return "execq"
	case UnitExec:
		return "exec"
	case UnitFPU:
		return "fpu"
	case UnitRetire:
		return "retire"
	default:
		return fmt.Sprintf("Unit(%d)", int(u))
	}
}

// pipe is the transit state of one unit: a fixed-capacity ring of
// in-flight instructions held as parallel sequence/entry-cycle arrays
// (struct-of-arrays, indexed by slot). The backing arrays are sized to
// a power of two so ring arithmetic is a mask, with the configured
// capacity enforced logically.
type pipe struct {
	seq  []uint64
	at   []uint64
	head int
	size int
	mask int
	cap  int
	// lastAt is the entry cycle of the newest element. Entries enter
	// in nondecreasing cycle order, so it bounds every element's age —
	// which makes anyMoving O(1) instead of a scan.
	lastAt uint64
}

func makePipe(capacity int) pipe {
	n := 1
	for n < capacity {
		n <<= 1
	}
	return pipe{seq: make([]uint64, n), at: make([]uint64, n), mask: n - 1, cap: capacity}
}

//lint:hotpath ring occupancy checks run several times per cycle; must not allocate
func (f *pipe) full() bool  { return f.size == f.cap }
func (f *pipe) empty() bool { return f.size == 0 }

//lint:hotpath ring push runs per stage advance; must not allocate
func (f *pipe) push(seq, at uint64) {
	i := (f.head + f.size) & f.mask
	f.seq[i], f.at[i] = seq, at
	f.size++
	f.lastAt = at
}

//lint:hotpath ring head accessors run per stage per cycle; must not allocate
func (f *pipe) headSeq() uint64 { return f.seq[f.head] }
func (f *pipe) headAt() uint64  { return f.at[f.head] }

//lint:hotpath ring pop runs per stage advance; must not allocate
func (f *pipe) pop() (seq, at uint64) {
	seq, at = f.seq[f.head], f.at[f.head]
	f.head = (f.head + 1) & f.mask
	f.size--
	return seq, at
}

// anyMoving reports whether any entry is still in transit (younger
// than the pipe's stage count), i.e. the unit's latches switched this
// cycle. The newest entry has the largest entry cycle, so one compare
// answers for the whole ring.
//
//lint:hotpath per-cycle activity check; must not allocate
func (f *pipe) anyMoving(cycle, transit uint64) bool {
	return f.size > 0 && cycle-f.lastAt < transit
}

// Writer-capture flag bits of window.wflags.
const (
	wHasBase = 1 << 0
	wHasSrc1 = 1 << 1
	wHasSrc2 = 1 << 2
)

// window is the in-flight instruction state from decode entry to
// retirement, held as flat struct-of-arrays indexed by window slot
// (seq mod capacity): the per-slot scheduling fields the hot loop
// touches every cycle live in their own contiguous arrays instead of
// behind per-entry pointers.
type window struct {
	in        []isa.Instruction
	seq       []uint64 // sequence number (guards window-slot reuse)
	dataReady []uint64 // mem ops: cycle the cache data is available
	issuedAt  []uint64 // issue cycle (never until issued)
	complete  []uint64 // completion cycle (never until known)

	// Memory ops snapshot their base-register producer at decode exit;
	// out-of-order mode captures the full source producers at rename.
	baseWriter []uint64
	src1Writer []uint64
	src2Writer []uint64
	wflags     []uint8

	// mask is capacity−1 when the capacity is a power of two (the
	// default WindowCap is); otherwise 0 and idx falls back to modulo.
	mask uint64
	num  uint64
}

// makeWindow allocates the scheduling arrays. The record-copy column
// in is allocated by the caller only on the per-cycle path — the fused
// packed loop (fastsim.go) reads the trace columns directly and leaves
// it nil.
func makeWindow(capacity int) window {
	w := window{
		seq:        make([]uint64, capacity),
		dataReady:  make([]uint64, capacity),
		issuedAt:   make([]uint64, capacity),
		complete:   make([]uint64, capacity),
		baseWriter: make([]uint64, capacity),
		src1Writer: make([]uint64, capacity),
		src2Writer: make([]uint64, capacity),
		num:        uint64(capacity),
	}
	w.wflags = make([]uint8, capacity)
	if capacity&(capacity-1) == 0 {
		w.mask = uint64(capacity - 1)
	}
	return w
}

// idx maps a sequence number to its window slot.
//
//lint:hotpath window-slot accessor called many times per cycle; must not allocate
func (w *window) idx(seq uint64) uint64 {
	if w.mask != 0 {
		return seq & w.mask
	}
	return seq % w.num
}
