package pipeline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/isa"
	"repro/internal/trace"
)

// randomTrace builds a random but architecturally valid instruction
// sequence, exercising every class and dependency shape (including
// self-references and dense register reuse).
func randomTrace(rng *rand.Rand, n int) []isa.Instruction {
	ins := make([]isa.Instruction, 0, n)
	pc := uint64(0x1000)
	for len(ins) < n {
		var in isa.Instruction
		in.PC = pc
		pc += 4
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			in.Class = isa.RR
			in.Dst = isa.Reg(rng.Intn(isa.NumGPR))
			in.Src1 = isa.Reg(rng.Intn(isa.NumGPR))
			in.Src2 = isa.Reg(rng.Intn(isa.NumGPR))
		case 4, 5:
			in.Class = isa.Load
			in.Dst = isa.Reg(rng.Intn(isa.NumGPR))
			in.Src1 = isa.Reg(rng.Intn(isa.NumGPR)) // base may equal dst
			in.Src2 = isa.RegNone
			in.Addr = 0x1000_0000 + uint64(rng.Intn(1<<18))*8
		case 6:
			in.Class = isa.Store
			in.Dst = isa.RegNone
			in.Src1 = isa.Reg(rng.Intn(isa.NumGPR))
			in.Src2 = isa.Reg(rng.Intn(isa.NumGPR))
			in.Addr = 0x1000_0000 + uint64(rng.Intn(1<<18))*8
		case 7, 8:
			in.Class = isa.Branch
			in.Dst = isa.RegNone
			in.Src1 = isa.Reg(rng.Intn(isa.NumGPR))
			in.Src2 = isa.RegNone
			in.Target = 0x1000 + uint64(rng.Intn(1<<12))*4
			in.Taken = rng.Intn(2) == 0
		default:
			in.Class = isa.FP
			in.Dst = isa.FirstFPR + isa.Reg(rng.Intn(isa.NumFPR))
			in.Src1 = isa.FirstFPR + isa.Reg(rng.Intn(isa.NumFPR))
			in.Src2 = isa.FirstFPR + isa.Reg(rng.Intn(isa.NumFPR))
			in.FPLat = uint8(1 + rng.Intn(20))
		}
		ins = append(ins, in)
	}
	return ins
}

// TestEngineInvariantsOnRandomTraces drives both execution disciplines
// over random traces at random depths and checks the engine's global
// invariants: every instruction retires exactly once, the issue
// histogram accounts for every cycle and instruction, stall cycles
// never exceed total cycles, per-unit activity is bounded by the cycle
// count, and the run is deterministic.
func TestEngineInvariantsOnRandomTraces(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(17))}
	f := func(seed int64, depthPick uint8, oooPick bool) bool {
		rng := rand.New(rand.NewSource(seed))
		depth := MinSimDepth + int(depthPick)%(25-MinSimDepth+1)
		n := 300 + rng.Intn(900)
		ins := randomTrace(rng, n)

		run := func() *Result {
			mc := MustDefaultConfig(depth)
			mc.OutOfOrder = oooPick
			r, err := Run(mc, trace.NewSliceStream(ins))
			if err != nil {
				t.Logf("seed %d depth %d ooo %v: %v", seed, depth, oooPick, err)
				return nil
			}
			return r
		}
		r := run()
		if r == nil {
			return false
		}
		if r.Instructions != uint64(n) {
			t.Logf("retired %d of %d", r.Instructions, n)
			return false
		}
		var histSum, weighted uint64
		for k, c := range r.IssueHist {
			histSum += c
			weighted += uint64(k) * c
		}
		if histSum != r.Cycles || weighted != r.Instructions {
			t.Logf("histogram: %d cycles %d issued", histSum, weighted)
			return false
		}
		if r.TotalStallCycles() > r.Cycles {
			t.Logf("stalls %d exceed cycles %d", r.TotalStallCycles(), r.Cycles)
			return false
		}
		for u := 0; u < NumUnits; u++ {
			if r.UnitActive[u] > r.Cycles {
				t.Logf("unit %s active beyond cycles", Unit(u))
				return false
			}
		}
		if r.MaxWindowOccupied > MustDefaultConfig(depth).WindowCap {
			t.Logf("window overflow")
			return false
		}
		// Determinism.
		r2 := run()
		if r2 == nil || r2.Cycles != r.Cycles || r2.Hazards != r.Hazards {
			t.Logf("non-deterministic")
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestEngineTimeSanityOnRandomTraces bounds execution time: a trace
// can never finish faster than width allows nor absurdly slower than
// its serial latency sum.
func TestEngineTimeSanityOnRandomTraces(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(23))}
	f := func(seed int64, oooPick bool) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 600
		ins := randomTrace(rng, n)
		mc := MustDefaultConfig(12)
		mc.OutOfOrder = oooPick
		r, err := Run(mc, trace.NewSliceStream(ins))
		if err != nil {
			return false
		}
		if r.Cycles < uint64(n)/uint64(mc.Width) {
			t.Logf("faster than issue width allows: %d cycles", r.Cycles)
			return false
		}
		// Loose upper bound: every instruction fully serialized at
		// worst-case latency (memory ≈ 90 cycles at depth 12).
		if r.Cycles > uint64(n)*200 {
			t.Logf("implausibly slow: %d cycles for %d instructions", r.Cycles, n)
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestOOONeverSlowerOnRandomTraces: across random traces, the renamed
// out-of-order machine is never meaningfully slower than the in-order
// one (same fetch, queues and latencies; strictly more issue freedom).
func TestOOONeverSlowerOnRandomTraces(t *testing.T) {
	cfg := &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(29))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ins := randomTrace(rng, 500)
		run := func(ooo bool) uint64 {
			mc := MustDefaultConfig(10)
			mc.OutOfOrder = ooo
			r, err := Run(mc, trace.NewSliceStream(ins))
			if err != nil {
				return 0
			}
			return r.Cycles
		}
		in, ooo := run(false), run(true)
		if in == 0 || ooo == 0 {
			return false
		}
		// Allow a small slack: the extra rename stage lengthens the
		// refill path, which can cost a few cycles on mispredict-heavy
		// random code.
		if float64(ooo) > float64(in)*1.10+20 {
			t.Logf("seed %d: OOO %d cycles vs in-order %d", seed, ooo, in)
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
