package pipeline

import (
	"fmt"
	"sort"

	"repro/internal/branch"
	"repro/internal/cache"
)

// Machine presets. The companion performance-only study (Hartstein &
// Puzak, ISCA 2002) validated the same analytic framework across four
// different microarchitectures; these presets provide a comparable
// spread of machines for cross-machine studies on this simulator.

// Preset names a machine configuration family.
type Preset string

// The available machine presets.
const (
	// PresetZSeries is the paper's machine: 4-issue, in-order,
	// tournament prediction, blocking L1.
	PresetZSeries Preset = "zseries"
	// PresetZSeriesOOO is the same machine with register renaming and
	// out-of-order issue.
	PresetZSeriesOOO Preset = "zseries-ooo"
	// PresetNarrow is a 2-issue embedded-class machine with a bimodal
	// predictor and a small BTB.
	PresetNarrow Preset = "narrow"
	// PresetWide is an aggressive 8-issue out-of-order machine with
	// non-blocking caches and deeper queues.
	PresetWide Preset = "wide"
)

// Presets lists the preset names in stable order.
func Presets() []string {
	names := []string{
		string(PresetZSeries), string(PresetZSeriesOOO),
		string(PresetNarrow), string(PresetWide),
	}
	sort.Strings(names)
	return names
}

// PresetConfig builds the named machine at the given depth. Each call
// returns fresh predictor/cache state.
func PresetConfig(preset Preset, depth int) (Config, error) {
	cfg, err := DefaultConfig(depth)
	if err != nil {
		return cfg, err
	}
	switch preset {
	case PresetZSeries:
		// The baseline.
	case PresetZSeriesOOO:
		cfg.OutOfOrder = true
	case PresetNarrow:
		cfg.Width = 2
		cfg.AgenWidth = 1
		cfg.CachePorts = 1
		cfg.AgenQCap = 4
		cfg.ExecQCap = 8
		cfg.Predictor = branch.NewBimodal(10)
		cfg.BTB = branch.MustBTB(128, 2)
	case PresetWide:
		cfg.Width = 8
		cfg.AgenWidth = 4
		cfg.CachePorts = 4
		cfg.BranchWidth = 2
		cfg.AgenQCap = 16
		cfg.ExecQCap = 48
		cfg.OutOfOrder = true
		cfg.NonBlockingCache = true
		hc := cache.DefaultHierarchy()
		hc.PrefetchDegree = 4
		cfg.Hierarchy = cache.MustHierarchy(hc)
		cfg.BTB = branch.MustBTB(2048, 4)
	default:
		return Config{}, fmt.Errorf("pipeline: unknown preset %q (have %v)", preset, Presets())
	}
	return cfg, nil
}
