package pipeline

import (
	"repro/internal/telemetry"
)

// ResultData is the serializable measurement payload of a Result: every
// counter the simulator produced, without the live machine models
// (predictor, caches, tracer) attached to the Config. It is the unit of
// storage for the on-disk result cache — a Result split into the part
// that must be persisted (this) and the part that can be rebuilt from
// the machine configuration (the Config itself, identified by its
// Fingerprint).
type ResultData struct {
	Instructions uint64 `json:"instructions"`
	Cycles       uint64 `json:"cycles"`

	IssueCycles uint64                  `json:"issue_cycles"`
	IssueHist   []uint64                `json:"issue_hist,omitempty"`
	StallCycles [NumStallCauses]uint64  `json:"stall_cycles"`
	CycleBudget [NumCycleBuckets]uint64 `json:"cycle_budget"`
	Hazards     HazardCounts            `json:"hazards"`

	Branches          uint64           `json:"branches"`
	TakenBranches     uint64           `json:"taken_branches"`
	PredictorCorrect  uint64           `json:"predictor_correct"`
	LoadCount         uint64           `json:"load_count"`
	RXCount           uint64           `json:"rx_count"`
	StoreCount        uint64           `json:"store_count"`
	L1Misses          uint64           `json:"l1_misses"`
	ICacheMisses      uint64           `json:"icache_misses"`
	BTBMisses         uint64           `json:"btb_misses"`
	UnitActive        [NumUnits]uint64 `json:"unit_active"`
	UnitOps           [NumUnits]uint64 `json:"unit_ops"`
	Samples           []ActivitySample `json:"samples,omitempty"`
	MaxWindowOccupied int              `json:"max_window_occupied"`
}

// Data extracts the serializable measurement payload of the result.
// Slices are copied so the payload is independent of the Result.
func (r *Result) Data() ResultData {
	d := ResultData{
		Instructions:      r.Instructions,
		Cycles:            r.Cycles,
		IssueCycles:       r.IssueCycles,
		StallCycles:       r.StallCycles,
		CycleBudget:       r.CycleBudget,
		Hazards:           r.Hazards,
		Branches:          r.Branches,
		TakenBranches:     r.TakenBranches,
		PredictorCorrect:  r.PredictorCorrect,
		LoadCount:         r.LoadCount,
		RXCount:           r.RXCount,
		StoreCount:        r.StoreCount,
		L1Misses:          r.L1Misses,
		ICacheMisses:      r.ICacheMisses,
		BTBMisses:         r.BTBMisses,
		UnitActive:        r.UnitActive,
		UnitOps:           r.UnitOps,
		MaxWindowOccupied: r.MaxWindowOccupied,
	}
	if r.IssueHist != nil {
		d.IssueHist = append([]uint64(nil), r.IssueHist...)
	}
	if r.Samples != nil {
		d.Samples = append([]ActivitySample(nil), r.Samples...)
	}
	return d
}

// Restore rebuilds a Result from the payload under the given machine
// configuration. The configuration must be equivalent (same
// Fingerprint) to the one that produced the data: every derived figure
// — IPC, BIPS, per-unit utilization, power evaluation — then matches
// the original run exactly. The manifest is restamped to record the
// restore rather than the original simulation's wall time.
func (d ResultData) Restore(cfg Config) *Result {
	man := telemetry.NewManifest("pipeline.Restore")
	man.ConfigHash = cfg.Fingerprint()
	r := &Result{
		Config:            cfg,
		Manifest:          man,
		Instructions:      d.Instructions,
		Cycles:            d.Cycles,
		IssueCycles:       d.IssueCycles,
		StallCycles:       d.StallCycles,
		CycleBudget:       d.CycleBudget,
		Hazards:           d.Hazards,
		Branches:          d.Branches,
		TakenBranches:     d.TakenBranches,
		PredictorCorrect:  d.PredictorCorrect,
		LoadCount:         d.LoadCount,
		RXCount:           d.RXCount,
		StoreCount:        d.StoreCount,
		L1Misses:          d.L1Misses,
		ICacheMisses:      d.ICacheMisses,
		BTBMisses:         d.BTBMisses,
		UnitActive:        d.UnitActive,
		UnitOps:           d.UnitOps,
		MaxWindowOccupied: d.MaxWindowOccupied,
	}
	if d.IssueHist != nil {
		r.IssueHist = append([]uint64(nil), d.IssueHist...)
	}
	if d.Samples != nil {
		r.Samples = append([]ActivitySample(nil), d.Samples...)
	}
	return r
}
