package pipeline

import (
	"math/bits"

	"repro/internal/isa"
)

// Skip-ahead over deterministic stall spans.
//
// The per-cycle engine spends most of its cycles doing nothing: the
// machine sits in a stall span — a mispredict freeze, a cache-miss
// fill, an FPU occupancy, a long dependence wait — where every stage's
// guard is a comparison against a future cycle number and no state
// changes except the cycle counter and the per-cycle accounting. The
// same observation the paper exploits analytically (a k-cycle refill
// is one closed-form interval, not k events) lets the simulator
// replicate such cycles in O(1).
//
// Legality. skipAhead runs only immediately after a cycle the engine
// itself observed to be quiet (see step: nothing fetched, issued,
// moved, retired or touched the cache, and the trace-end transition
// did not fire) that was accounted as a stall. In that situation every
// stage is blocked, and each stage's blocker is either
//
//   - a time gate: a comparison of the frozen machine state against
//     the advancing cycle counter (regReady/dataReady/complete
//     thresholds, fpuBusyUntil, cacheBusyUntil, iBusyUntil,
//     redirectHoldTo, pipe transit ages), or
//   - a resource gate: a full queue or an unready producer, which only
//     another stage's movement could clear.
//
// By induction over the stage dependency chain, no stage can move
// before the earliest time gate fires: the first movement in the span
// must be enabled by a time gate, because before any movement every
// resource gate is unchanged. wakeCycle therefore enumerates every
// time gate reachable from the frozen state — including the gates that
// merely flip an accounting decision rather than movement (stall-cause
// reclassification thresholds inside blockCause/classifyDep, the
// anyMoving transit ages and busy-until horizons that feed
// UnitActive, and the iBusyUntil horizon that splits the frontend
// budget bucket) — and the engine replicates the quiet cycle's exact
// accounting for every cycle strictly before the earliest gate:
//
//	IssueHist[0]        += k   (zero-issue cycle)
//	CycleBudget[bucket] += k   (same bucket: all gates ≥ wake)
//	StallCycles[cause]  += k   (same cause: all gates ≥ wake)
//	UnitActive[u]       += k   for each unit active in the quiet cycle
//	UnitOps[fetch/dec]  += k·Width under WrongPathActivity freezes
//
// Episode counters add nothing: the replicated cycles continue the
// same-cause stall run begun by the stepped cycle. The watchdog and
// MaxCycles horizons participate as gates, so runaway detection fires
// on exactly the same cycle as per-cycle stepping.
//
// Skip-ahead is disabled (Run never arms s.skip) whenever individual
// cycles are observable: attached invariants, an armed tracer,
// activity sampling, or the out-of-order window (which re-scans the
// pending list per cycle). With it disabled, results are produced by
// per-cycle stepping alone; with it enabled they are bit-identical by
// construction, which the difftest bit-identity tier verifies
// end-to-end.

// skipAhead replicates the just-stepped quiet stall cycle up to (but
// not including) the earliest cycle at which any time gate fires.
//
//lint:hotpath runs after every quiet stall cycle; must not allocate
func (s *sim) skipAhead() {
	if s.issued < s.decoded {
		// Defensive: only replicate while the issue head is provably
		// blocked. A quiet cycle with an issuable head cannot happen
		// (stepIssue would have issued it); if it ever did, stepping
		// per-cycle is always correct.
		if !s.headBlocked() {
			return
		}
	}
	wake := s.wakeCycle()
	if wake <= s.cycle+1 {
		return
	}
	k := wake - s.cycle - 1
	s.res.IssueHist[0] += k
	s.res.CycleBudget[s.lastBucket] += k
	s.res.StallCycles[s.prevStall] += k
	for m := s.active; m != 0; m &= m - 1 {
		s.res.UnitActive[bits.TrailingZeros32(m)] += k
	}
	if s.cfg.WrongPathActivity && s.havePending {
		s.res.UnitOps[UnitFetch] += k * uint64(s.cfg.Width)
		s.res.UnitOps[UnitDecode] += k * uint64(s.cfg.Width)
	}
	s.cycle = wake - 1
}

// boundWake lowers wake to candidate gate c when c is in the future
// (gates at or before the frozen cycle t are inert: their comparisons
// already resolved in the stepped cycle and cannot flip again).
//
//lint:hotpath gate accumulation inside wakeCycle; must not allocate
func boundWake(wake, c, t uint64) uint64 {
	if c > t && c < wake {
		return c
	}
	return wake
}

// wakeCycle returns the earliest future cycle at which any time gate
// of the frozen machine state can fire. Cycles strictly before it
// replay the quiet cycle verbatim.
//
//lint:hotpath runs after every quiet stall cycle; must not allocate
func (s *sim) wakeCycle() uint64 {
	t := s.cycle
	// Watchdog and MaxCycles horizons: never skip past the cycle on
	// which per-cycle stepping would abort the run.
	wake := s.lastProgress + watchdogCycles + 1
	if m := s.cfg.MaxCycles; m > 0 && m+1 < wake {
		wake = m + 1
	}

	// Front-end hold timers (fetch gates and the icache/frontend
	// budget-bucket split).
	wake = boundWake(wake, s.iBusyUntil, t)
	wake = boundWake(wake, s.redirectHoldTo, t)
	// Busy-until horizons (activity flips and the FP issue gate).
	wake = boundWake(wake, s.execActiveUntil, t)
	wake = boundWake(wake, s.fpuBusyUntil, t)

	// Mispredict resolution: fetch unfreezes the cycle after the
	// pending branch completes.
	if s.havePending {
		if c := s.w.complete[s.w.idx(s.pendingBranch)]; c != never {
			wake = boundWake(wake, c+1, t)
		}
	}
	// Retirement of the window head.
	if s.retired < s.decoded {
		i := s.w.idx(s.retired)
		if s.w.issuedAt[i] != never && s.w.complete[i] != never {
			wake = boundWake(wake, s.w.complete[i]+1, t)
		}
	}
	// Issue of the execution-queue head: every comparison threshold in
	// its blockCause chain.
	if s.issued < s.decoded {
		wake = s.issueWake(wake)
	}
	// Cache exit.
	if s.cachePipe.size > 0 {
		wake = boundWake(wake, s.cacheBusyUntil, t)
		wake = boundWake(wake, s.cachePipe.headAt()+s.cacheT, t)
		wake = boundWake(wake, s.cachePipe.lastAt+s.cacheT, t)
	}
	// Agen advance (head eligibility and anyMoving flip).
	if s.agenPipe.size > 0 {
		wake = boundWake(wake, s.agenPipe.headAt()+s.agenTransit, t)
		wake = boundWake(wake, s.agenPipe.lastAt+s.agenTransit, t)
	}
	// Agen-queue head: its base producer's ready time.
	if s.agenQ.size > 0 {
		i := s.w.idx(s.agenQ.headSeq())
		if s.w.wflags[i]&wHasBase != 0 {
			if rt := s.writerReady(s.w.baseWriter[i]); rt != never {
				wake = boundWake(wake, rt, t)
			}
		}
	}
	// Decode exit (head eligibility and anyMoving flip).
	if s.decodePipe.size > 0 {
		wake = boundWake(wake, s.decodePipe.headAt()+s.decTransit, t)
		wake = boundWake(wake, s.decodePipe.lastAt+s.decTransit, t)
	}
	return wake
}

// issueWake folds in every time gate of the in-order issue head's
// blockCause chain: the comparisons that unblock it and the ones that
// merely reclassify the stall cause mid-wait (classifyDep consults the
// producer's dataReady, so that threshold gates too).
//
//lint:hotpath runs after every quiet stall cycle; must not allocate
func (s *sim) issueWake(wake uint64) uint64 {
	t := s.cycle
	i := s.w.idx(s.issued)
	c, r1, r2 := s.headOperands(s.issued, i)
	switch c {
	case isa.Load:
		// A load head is never blocked; the defensive blockCause check
		// in skipAhead already bailed. Unreachable.
	case isa.Store:
		wake = boundWake(wake, s.regReady[r1], t)
		wake = s.depWake(wake, r1, t)
	case isa.RX:
		if dr := s.w.dataReady[i]; dr != never {
			wake = boundWake(wake, dr, t)
		}
		wake = boundWake(wake, s.regReady[r1], t)
		wake = s.depWake(wake, r1, t)
	default: // FP, RR, Branch
		if c == isa.FP {
			wake = boundWake(wake, s.fpuBusyUntil, t)
		}
		if r1 != isa.RegNone {
			wake = boundWake(wake, s.regReady[r1], t)
			wake = s.depWake(wake, r1, t)
		}
		if r2 != isa.RegNone {
			wake = boundWake(wake, s.regReady[r2], t)
			wake = s.depWake(wake, r2, t)
		}
	}
	return wake
}

// depWake mirrors classifyDep's internal thresholds: while a consumer
// waits on register r, the reported cause can flip from memory to
// plain dependency exactly when the producing load's data arrives, so
// that arrival is a gate even though nothing moves.
//
//lint:hotpath runs per issue-head operand after quiet stall cycles; must not allocate
func (s *sim) depWake(wake uint64, r isa.Reg, t uint64) uint64 {
	if r == isa.RegNone || !s.haveWriter[r] {
		return wake
	}
	p := s.w.idx(s.lastWriter[r])
	if s.slotClass(p) == isa.Load && s.w.dataReady[p] != never {
		wake = boundWake(wake, s.w.dataReady[p], t)
	}
	return wake
}
