package pipeline

import "testing"

func TestPlanDepthRange(t *testing.T) {
	if _, err := PlanDepth(1); err == nil {
		t.Error("depth 1 accepted")
	}
	if _, err := PlanDepth(MaxSimDepth + 1); err == nil {
		t.Error("over-max depth accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustPlanDepth did not panic")
		}
	}()
	MustPlanDepth(0)
}

func TestPlanDepthSumsAndFloors(t *testing.T) {
	for d := MinSimDepth; d <= MaxSimDepth; d++ {
		p := MustPlanDepth(d)
		if p.Total() != d {
			t.Errorf("depth %d: stages sum to %d", d, p.Total())
		}
		if p.Decode < 1 || p.Cache < 1 {
			t.Errorf("depth %d: decode/cache below floor: %+v", d, p)
		}
		if d >= 4 && (p.Agen < 1 || p.Exec < 1) {
			t.Errorf("depth %d: agen/exec below floor: %+v", d, p)
		}
	}
}

func TestPlanDepthMonotone(t *testing.T) {
	// No unit shrinks as the pipeline deepens.
	prev := MustPlanDepth(4)
	for d := 5; d <= MaxSimDepth; d++ {
		p := MustPlanDepth(d)
		if p.Decode < prev.Decode || p.Agen < prev.Agen ||
			p.Cache < prev.Cache || p.Exec < prev.Exec {
			t.Errorf("depth %d shrank a unit: %+v after %+v", d, p, prev)
		}
		prev = p
	}
}

func TestPlanDepthPaperSplit(t *testing.T) {
	// At depth 20 the split is decode 8 / agen 2 / cache 6 / exec 4.
	p := MustPlanDepth(20)
	if p.Decode != 8 || p.Agen != 2 || p.Cache != 6 || p.Exec != 4 {
		t.Errorf("depth 20 split = %+v", p)
	}
}

func TestPlanDepthMerges(t *testing.T) {
	p2 := MustPlanDepth(2)
	if len(p2.MergeGroups) != 2 {
		t.Fatalf("depth 2 merge groups = %v", p2.MergeGroups)
	}
	if got := p2.MergedWith(UnitDecode); len(got) != 1 || got[0] != UnitAgen {
		t.Errorf("depth 2 decode merged with %v", got)
	}
	if got := p2.MergedWith(UnitExec); len(got) != 1 || got[0] != UnitCache {
		t.Errorf("depth 2 exec merged with %v", got)
	}
	p3 := MustPlanDepth(3)
	if got := p3.MergedWith(UnitAgen); len(got) != 1 || got[0] != UnitCache {
		t.Errorf("depth 3 agen merged with %v", got)
	}
	if got := p3.MergedWith(UnitDecode); got != nil {
		t.Errorf("depth 3 decode merged with %v", got)
	}
	p10 := MustPlanDepth(10)
	if len(p10.MergeGroups) != 0 {
		t.Errorf("depth 10 has merges: %v", p10.MergeGroups)
	}
}

func TestUnitStages(t *testing.T) {
	p := MustPlanDepth(20)
	if p.UnitStages(UnitDecode) != 8 || p.UnitStages(UnitExec) != 4 {
		t.Error("UnitStages mismatch with plan")
	}
	if p.UnitStages(UnitFetch) != 1 || p.UnitStages(UnitRetire) != 1 {
		t.Error("bookend units must report 1 stage")
	}
	if p.UnitStages(UnitFPU) != 4 {
		t.Errorf("FPU stages = %d, want exec's 4", p.UnitStages(UnitFPU))
	}
}

func TestUnitString(t *testing.T) {
	names := map[Unit]string{
		UnitFetch: "fetch", UnitDecode: "decode", UnitAgenQ: "agenq",
		UnitAgen: "agen", UnitCache: "cache", UnitExecQ: "execq",
		UnitExec: "exec", UnitFPU: "fpu", UnitRetire: "retire",
	}
	for u, want := range names {
		if u.String() != want {
			t.Errorf("%d.String() = %q", u, u.String())
		}
	}
	if Unit(99).String() == "" {
		t.Error("unknown unit empty name")
	}
}

func TestConfigValidate(t *testing.T) {
	good := MustDefaultConfig(10)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	mods := []func(*Config){
		func(c *Config) { c.Width = 0 },
		func(c *Config) { c.AgenWidth = 0 },
		func(c *Config) { c.AgenQCap = 0 },
		func(c *Config) { c.WindowCap = 4 },
		func(c *Config) { c.TP = 0 },
		func(c *Config) { c.Plan.Exec++ },
	}
	for i, mod := range mods {
		c := MustDefaultConfig(10)
		mod(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mod %d accepted", i)
		}
	}
	if _, err := DefaultConfig(1); err == nil {
		t.Error("DefaultConfig(1) accepted")
	}
}

func TestLatencyCycles(t *testing.T) {
	c := MustDefaultConfig(10) // ts = 16.5 FO4
	if got := c.CycleTime(); got != 16.5 {
		t.Fatalf("cycle time = %g", got)
	}
	cases := []struct {
		fo4  float64
		want uint64
	}{
		{0, 0},
		{1, 1},
		{16.5, 1},
		{16.6, 2},
		{700, 43}, // 700/16.5 = 42.42
	}
	for _, tc := range cases {
		if got := c.LatencyCycles(tc.fo4); got != tc.want {
			t.Errorf("LatencyCycles(%g) = %d, want %d", tc.fo4, got, tc.want)
		}
	}
}

func TestPresets(t *testing.T) {
	names := Presets()
	if len(names) != 4 {
		t.Fatalf("presets = %v", names)
	}
	for _, n := range names {
		cfg, err := PresetConfig(Preset(n), 12)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s invalid: %v", n, err)
		}
	}
	if _, err := PresetConfig("cray", 12); err == nil {
		t.Error("unknown preset accepted")
	}
	// Distinguishing features.
	narrow, _ := PresetConfig(PresetNarrow, 12)
	wide, _ := PresetConfig(PresetWide, 12)
	if narrow.Width != 2 || wide.Width != 8 || !wide.OutOfOrder || narrow.OutOfOrder {
		t.Error("preset geometry wrong")
	}
	// Fresh state per call.
	a, _ := PresetConfig(PresetZSeries, 12)
	b, _ := PresetConfig(PresetZSeries, 12)
	if a.Predictor == b.Predictor {
		t.Error("presets share predictor state")
	}
}
