package pipeline

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

func TestRunWithTracerRecordsLifecycleEvents(t *testing.T) {
	const n = 400
	cfg := idealConfig(10)
	tr := NewTracer(1 << 16)
	cfg.Tracer = tr
	r := mustRun(t, cfg, rrIndependent(n))

	var counts [telemetry.NumEventKinds]int
	for _, ev := range tr.Events() {
		counts[ev.Kind]++
	}
	// Every instruction is fetched, issued and retired exactly once.
	for _, k := range []telemetry.EventKind{
		telemetry.KindFetch, telemetry.KindIssue, telemetry.KindRetire,
	} {
		if counts[k] != n {
			t.Errorf("%s events = %d, want %d", k, counts[k], n)
		}
	}
	// Gate events fire on cycles where any unit switched; a running
	// pipeline switches on nearly every cycle.
	if g := counts[telemetry.KindGate]; uint64(g) > r.Cycles || g == 0 {
		t.Errorf("gate events = %d over %d cycles", g, r.Cycles)
	}
	// The retire stream must be in program order.
	var lastRetire uint64
	first := true
	for _, ev := range tr.Events() {
		if ev.Kind != telemetry.KindRetire {
			continue
		}
		if !first && ev.Arg <= lastRetire {
			t.Fatalf("retire seq %d after %d: out of order", ev.Arg, lastRetire)
		}
		lastRetire, first = ev.Arg, false
	}
}

func TestRunWithoutTracerRecordsNothing(t *testing.T) {
	cfg := idealConfig(10)
	r := mustRun(t, cfg, rrIndependent(400))
	if r.Cycles == 0 {
		t.Fatal("empty run")
	}
	// Config.Tracer nil is the disabled state; nothing to assert on a
	// tracer that does not exist, but the run must still succeed and
	// stamp its manifest.
	if r.Manifest.ConfigHash == "" {
		t.Error("manifest missing config hash")
	}
	if r.Manifest.GoVersion == "" || r.Manifest.WallTimeSec < 0 {
		t.Errorf("manifest environment not stamped: %+v", r.Manifest)
	}
	if d := r.Manifest.Params["depth"]; d != "10" {
		t.Errorf("manifest depth = %q, want 10", d)
	}
}

func TestManifestHashTracksConfig(t *testing.T) {
	a := mustRun(t, idealConfig(10), rrIndependent(100))
	b := mustRun(t, idealConfig(10), rrIndependent(100))
	if a.Manifest.ConfigHash != b.Manifest.ConfigHash {
		t.Errorf("identical configs hash differently: %s vs %s",
			a.Manifest.ConfigHash, b.Manifest.ConfigHash)
	}
	c := mustRun(t, idealConfig(20), rrIndependent(100))
	if a.Manifest.ConfigHash == c.Manifest.ConfigHash {
		t.Error("different depths share a config hash")
	}
}

func TestRunPublishesMetrics(t *testing.T) {
	cfg := MustDefaultConfig(10)
	reg := telemetry.NewRegistry()
	cfg.Metrics = reg
	r := mustRun(t, cfg, rrIndependent(1000))

	checks := map[string]uint64{
		"pipeline.instructions": r.Instructions,
		"pipeline.cycles":       r.Cycles,
		"pipeline.issue_cycles": r.IssueCycles,
	}
	for name, want := range checks {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	var stalls uint64
	for c := 0; c < NumStallCauses; c++ {
		stalls += reg.Counter("pipeline.stall_cycles." + StallCause(c).String()).Value()
	}
	if stalls != r.TotalStallCycles() {
		t.Errorf("stall counters sum to %d, result says %d", stalls, r.TotalStallCycles())
	}
	// The attached hierarchy publishes its traffic counters too (zero
	// here — the RR-only workload touches no memory — but registered).
	published := false
	for _, m := range reg.Snapshot() {
		if m.Name == "cache.l1.accesses" {
			published = true
		}
	}
	if !published {
		t.Error("cache metrics not published")
	}
	// Counters aggregate across runs into the same registry.
	before := reg.Counter("pipeline.instructions").Value()
	mustRun(t, cfg2(reg), rrIndependent(500))
	if got := reg.Counter("pipeline.instructions").Value(); got != before+500 {
		t.Errorf("second run: instructions = %d, want %d", got, before+500)
	}
}

// cfg2 builds a fresh default config publishing into reg.
func cfg2(reg *telemetry.Registry) Config {
	c := MustDefaultConfig(10)
	c.Metrics = reg
	return c
}

func TestTracerChromeExportFromRun(t *testing.T) {
	cfg := MustDefaultConfig(12)
	tr := NewTracer(1 << 14)
	cfg.Tracer = tr
	r := mustRun(t, cfg, rrIndependent(600))

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf, &r.Manifest); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Metadata    map[string]any   `json:"metadata"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(out.TraceEvents) == 0 {
		t.Fatal("no trace events exported")
	}
	if out.Metadata["config_hash"] != r.Manifest.ConfigHash {
		t.Errorf("metadata config_hash = %v, want %s",
			out.Metadata["config_hash"], r.Manifest.ConfigHash)
	}
	gates := 0
	for _, ev := range out.TraceEvents {
		if ev["ph"] == "C" {
			gates++
		}
	}
	if gates == 0 {
		t.Error("no clock-gate counter events in export")
	}
}

func TestTracerSamplingThinsEvents(t *testing.T) {
	full := NewTracer(1 << 16)
	cfgA := idealConfig(10)
	cfgA.Tracer = full
	mustRun(t, cfgA, rrIndependent(1000))

	thin := NewTracer(1 << 16)
	thin.SetSampling(8)
	cfgB := idealConfig(10)
	cfgB.Tracer = thin
	mustRun(t, cfgB, rrIndependent(1000))

	if thin.Len() == 0 || thin.Len() >= full.Len()/2 {
		t.Errorf("1-in-8 sampling kept %d of %d events", thin.Len(), full.Len())
	}
}

func TestSchemaNameTablesMatchSim(t *testing.T) {
	units := UnitNames()
	if len(units) != NumUnits {
		t.Fatalf("UnitNames: %d entries, want %d", len(units), NumUnits)
	}
	for _, u := range units {
		if u == "" || strings.HasPrefix(u, "Unit(") {
			t.Errorf("unit name %q not human-readable", u)
		}
	}
	causes := StallCauseNames()
	if len(causes) != NumStallCauses {
		t.Fatalf("StallCauseNames: %d entries, want %d", len(causes), NumStallCauses)
	}
}
