package pipeline

import (
	"strings"
	"testing"

	"repro/internal/invariant"
	"repro/internal/telemetry/promexp"
	"repro/internal/trace"
	"repro/internal/workload"
)

// checkBudget asserts the cycle budget's conservation laws directly,
// independent of the invariant engine.
func checkBudget(t *testing.T, r *Result) {
	t.Helper()
	if got := r.BudgetTotal(); got != r.Cycles {
		t.Errorf("cycle budget sums to %d, run has %d cycles", got, r.Cycles)
	}
	if r.CycleBudget[BudgetUsefulIssue] != r.IssueCycles {
		t.Errorf("useful-issue bucket %d ≠ issue cycles %d",
			r.CycleBudget[BudgetUsefulIssue], r.IssueCycles)
	}
	if got, want := r.CycleBudget[BudgetICacheMiss]+r.CycleBudget[BudgetFrontendFill],
		r.StallCycles[StallFrontend]; got != want {
		t.Errorf("icache_miss+frontend_fill = %d ≠ frontend stalls %d", got, want)
	}
	if got, want := r.CycleBudget[BudgetMispredictRefill], r.StallCycles[StallBranch]; got != want {
		t.Errorf("mispredict_refill = %d ≠ branch stalls %d", got, want)
	}
}

func TestCycleBudgetSumsAcrossWorkloads(t *testing.T) {
	// The budget must be exhaustive and exclusive on every workload
	// class and in both execution modes.
	for _, prof := range workload.All()[:4] {
		for _, ooo := range []bool{false, true} {
			prof, ooo := prof, ooo
			name := prof.Name
			if ooo {
				name += "/ooo"
			}
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				gen, err := workload.NewGenerator(prof)
				if err != nil {
					t.Fatal(err)
				}
				cfg := MustDefaultConfig(14)
				cfg.OutOfOrder = ooo
				rec := invariant.New(nil)
				cfg.Invariants = rec
				r, err := Run(cfg, trace.NewLimitStream(gen, 6000))
				if err != nil {
					t.Fatal(err)
				}
				checkBudget(t, r)
				if !rec.OK() {
					t.Fatalf("invariant violations on a clean run: %v", rec.Violations())
				}
			})
		}
	}
}

func TestCycleBudgetICacheMissBucket(t *testing.T) {
	// An instruction-cache-carrying machine on a large code footprint
	// must attribute some dry-queue cycles to icache_miss.
	prof := workload.All()[0]
	gen, err := workload.NewGenerator(prof)
	if err != nil {
		t.Fatal(err)
	}
	cfg := MustDefaultConfig(16)
	r, err := Run(cfg, trace.NewLimitStream(gen, 8000))
	if err != nil {
		t.Fatal(err)
	}
	checkBudget(t, r)
	if r.ICacheMisses > 0 && r.CycleBudget[BudgetICacheMiss] == 0 {
		t.Errorf("%d icache misses but zero icache_miss budget cycles", r.ICacheMisses)
	}
}

func TestCycleBudgetDrainBucket(t *testing.T) {
	// A deep machine running a short hazard-free burst spends its tail
	// cycles draining, and those cycles are not stalls.
	r := mustRun(t, idealConfig(24), rrIndependent(64))
	checkBudget(t, r)
	if r.CycleBudget[BudgetDrain] == 0 {
		t.Error("deep pipeline drained without drain-bucket cycles")
	}
	stallSum := r.TotalStallCycles()
	budgetStalls := r.BudgetTotal() - r.CycleBudget[BudgetUsefulIssue] - r.CycleBudget[BudgetDrain]
	if budgetStalls != stallSum {
		t.Errorf("stall-derived budget cycles %d ≠ total stall cycles %d", budgetStalls, stallSum)
	}
}

func TestCycleBudgetInvariantCatchesSkew(t *testing.T) {
	// Inflating any single bucket must break RuleCycleBudget.
	r := simulatedResult(t)
	for b := 0; b < NumCycleBuckets; b++ {
		mut := r.Data().Restore(r.Config)
		mut.CycleBudget[b]++
		rec := invariant.New(nil)
		if CheckResultInvariants(rec, mut) {
			t.Errorf("skewed bucket %s passed CheckResultInvariants", CycleBucket(b))
		}
		found := false
		for _, v := range rec.Violations() {
			if v.Rule == RuleCycleBudget {
				found = true
			}
		}
		if !found {
			t.Errorf("skewed bucket %s: no %s violation recorded", CycleBucket(b), RuleCycleBudget)
		}
	}
}

func TestCycleBucketNamesAreSharedVocabulary(t *testing.T) {
	// Every bucket name must be in the shared rules table (and vice
	// versa): the metric names, the analyzer and the runtime agree.
	names := CycleBucketNames()
	if len(names) != len(promexp.BudgetBuckets) {
		t.Fatalf("%d bucket names, %d table entries", len(names), len(promexp.BudgetBuckets))
	}
	for _, n := range names {
		if err := promexp.ValidBudgetBucket(n); err != nil {
			t.Errorf("bucket %q: %v", n, err)
		}
		if err := promexp.ValidRegistryName("pipeline.budget." + n); err != nil {
			t.Errorf("registry name for %q: %v", n, err)
		}
	}
}

func TestBudgetReport(t *testing.T) {
	r := simulatedResult(t)
	rep := r.BudgetReport()
	for _, n := range CycleBucketNames() {
		if !strings.Contains(rep, n) {
			t.Errorf("budget report missing bucket %q:\n%s", n, rep)
		}
	}
}
