package pipeline

import (
	"fmt"
	"strconv"

	"repro/internal/branch"
	"repro/internal/isa"
	"repro/internal/telemetry"
)

// UnitNames returns the unit name table in Unit order, for telemetry
// schemas (tracer unit bitmasks) and metric naming.
func UnitNames() []string {
	out := make([]string, NumUnits)
	for u := 0; u < NumUnits; u++ {
		out[u] = Unit(u).String()
	}
	return out
}

// StallCauseNames returns the stall-cause name table in StallCause
// order, for telemetry schemas.
func StallCauseNames() []string {
	out := make([]string, NumStallCauses)
	for c := 0; c < NumStallCauses; c++ {
		out[c] = StallCause(c).String()
	}
	return out
}

// classNames returns the instruction-class name table in isa.Class
// order.
func classNames() []string {
	out := make([]string, isa.NumClasses)
	for c := 0; c < isa.NumClasses; c++ {
		out[c] = isa.Class(c).String()
	}
	return out
}

// NewTracer builds a tracer whose schema (unit, stall-cause and
// instruction-class names) matches this simulator, holding up to
// capacity events (telemetry.DefaultTraceEvents if ≤ 0). Assign it to
// Config.Tracer to record a run.
func NewTracer(capacity int) *telemetry.Tracer {
	tr := telemetry.NewTracer(capacity)
	tr.SetSchema(UnitNames(), StallCauseNames(), classNames())
	return tr
}

// Fingerprint renders the configuration's identity — every field that
// changes simulated behavior — into a stable hash for run manifests.
// Attached models are identified by their configuration, not their
// transient state.
func (c *Config) Fingerprint() string {
	pred := "none"
	if c.Predictor != nil {
		// Prefer the predictor's own configuration description; the
		// type name alone cannot distinguish table sizes.
		if fp, ok := c.Predictor.(branch.Fingerprinter); ok {
			pred = fp.Fingerprint()
		} else {
			pred = fmt.Sprintf("%T", c.Predictor)
		}
	}
	btb := "none"
	if c.BTB != nil {
		btb = c.BTB.Fingerprint()
	}
	hier := "none"
	if c.Hierarchy != nil {
		hier = fmt.Sprintf("%+v", c.Hierarchy.Config())
	}
	icache := "none"
	if c.ICache != nil {
		icache = fmt.Sprintf("icache:%+v/%g", c.ICache.Config(), c.ICacheMissFO4)
	}
	return telemetry.Fingerprint(
		fmt.Sprintf("geom:%d/%d/%d/%d q:%d/%d/%d ooo:%t",
			c.Width, c.AgenWidth, c.CachePorts, c.BranchWidth,
			c.AgenQCap, c.ExecQCap, c.WindowCap, c.OutOfOrder),
		fmt.Sprintf("plan:%+v", c.Plan),
		fmt.Sprintf("tech:tp=%g,to=%g", c.TP, c.TO),
		pred, btb, hier, icache,
		fmt.Sprintf("btbmiss:%d nonblock:%t redirect:%t wrongpath:%t keep:%t",
			c.BTBMissBubbles, c.NonBlockingCache, c.RedirectBubble,
			c.WrongPathActivity, c.KeepState),
		// Sampling and abort limits change the produced Result (the
		// activity trace, possibly truncation) and so are identity.
		fmt.Sprintf("sample:%d maxcycles:%d", c.SampleInterval, c.MaxCycles),
	)
}

// manifest builds the run manifest stamped onto every Result.
func (c *Config) manifest() telemetry.Manifest {
	m := telemetry.NewManifest("pipeline.Run")
	m.ConfigHash = c.Fingerprint()
	m.SetParam("depth", strconv.Itoa(c.Plan.Depth))
	m.SetParam("width", strconv.Itoa(c.Width))
	m.SetParam("cycle_time_fo4", fmt.Sprintf("%.3f", c.CycleTime()))
	if c.OutOfOrder {
		m.SetParam("ooo", "true")
	}
	return m
}

// PublishMetrics registers the run's outcome into the registry: one
// namespaced counter per figure the power monitor and stall
// accounting track, plus the attached cache hierarchy's and BTB's
// traffic counters. Counters aggregate across runs published into the
// same registry; gauges (ipc, bips) reflect the latest run.
func (r *Result) PublishMetrics(reg *telemetry.Registry) {
	reg.Counter("pipeline.instructions").Add(r.Instructions)
	reg.Counter("pipeline.cycles").Add(r.Cycles)
	reg.Counter("pipeline.issue_cycles").Add(r.IssueCycles)
	reg.Counter("pipeline.branches").Add(r.Branches)
	reg.Counter("pipeline.branch_mispredicts").Add(r.Hazards.BranchMispredicts)
	reg.Counter("pipeline.l1_misses").Add(r.L1Misses)
	reg.Counter("pipeline.hazards").Add(r.Hazards.Total())
	for c := 0; c < NumStallCauses; c++ {
		reg.Counter("pipeline.stall_cycles." + StallCause(c).String()).Add(r.StallCycles[c])
	}
	for b := 0; b < NumCycleBuckets; b++ {
		reg.Counter("pipeline.budget." + CycleBucket(b).String()).Add(r.CycleBudget[b])
	}
	for u := 0; u < NumUnits; u++ {
		un := Unit(u).String()
		reg.Counter("pipeline.unit_ops." + un).Add(r.UnitOps[u])
		reg.Counter("pipeline.unit_active." + un).Add(r.UnitActive[u])
	}
	h := reg.Histogram("pipeline.issue_width")
	for width, cycles := range r.IssueHist {
		h.ObserveN(uint64(width), cycles)
	}
	reg.Gauge("pipeline.ipc").Set(r.IPC())
	reg.Gauge("pipeline.bips").Set(r.BIPS())
	r.PublishAttribution(reg)
	if r.Config.Hierarchy != nil {
		r.Config.Hierarchy.PublishMetrics(reg)
	}
	if r.Config.BTB != nil {
		r.Config.BTB.PublishMetrics(reg)
	}
}

// PublishAttribution registers the per-unit and per-cause view of the
// run as Prometheus-style labeled series (telemetry.LabelName
// convention), the observable counterpart of the paper's per-cycle
// unit monitor:
//
//	pipeline_unit_duty{unit}       — slot utilization, the fine-grained
//	                                 clock-gating duty factor
//	pipeline_unit_occupancy{unit}  — fraction of cycles the unit
//	                                 switched at all
//	pipeline_unit_stages{unit}     — stages allocated under the plan
//	pipeline_stall_fraction{cause} — stall cycles per total cycle
//	pipeline_cycle_budget_fraction{bucket} — share of all cycles
//	                                 attributed to the budget bucket
//
// Gauges describe the most recent run published into the registry.
func (r *Result) PublishAttribution(reg *telemetry.Registry) {
	for u := 0; u < NumUnits; u++ {
		unit := Unit(u)
		un := unit.String()
		occ := 0.0
		if r.Cycles > 0 {
			occ = float64(r.UnitActive[u]) / float64(r.Cycles)
		}
		reg.Gauge(telemetry.LabelName("pipeline_unit_duty", "unit", un)).Set(r.UnitUtilization(unit))
		reg.Gauge(telemetry.LabelName("pipeline_unit_occupancy", "unit", un)).Set(occ)
		reg.Gauge(telemetry.LabelName("pipeline_unit_stages", "unit", un)).
			Set(float64(r.Config.Plan.UnitStages(unit)))
	}
	for c := 0; c < NumStallCauses; c++ {
		frac := 0.0
		if r.Cycles > 0 {
			frac = float64(r.StallCycles[c]) / float64(r.Cycles)
		}
		reg.Gauge(telemetry.LabelName("pipeline_stall_fraction", "cause", StallCause(c).String())).Set(frac)
	}
	for b := 0; b < NumCycleBuckets; b++ {
		bucket := CycleBucket(b)
		reg.Gauge(telemetry.LabelName("pipeline_cycle_budget_fraction", "bucket", bucket.String())).
			Set(r.BudgetFraction(bucket))
	}
}

// traceGate emits the per-cycle clock-gate event: a bitmask of the
// units whose latches switched this cycle.
//
//lint:hotpath per-cycle gate trace emission when tracing is armed; must not allocate
func (s *sim) traceGate() {
	s.tel.Emit(telemetry.Event{Cycle: s.cycle, Kind: telemetry.KindGate, Arg: uint64(s.active)})
}

// traceInstr emits one instruction-lifecycle event (fetch, issue or
// retire).
//
//lint:hotpath per-instruction trace emission when tracing is armed; must not allocate
func (s *sim) traceInstr(kind telemetry.EventKind, seq uint64, in *isa.Instruction) {
	s.tel.Emit(telemetry.Event{
		Cycle:  s.cycle,
		Kind:   kind,
		Arg:    seq,
		PC:     in.PC,
		Detail: uint8(in.Class),
	})
}
