package pipeline

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/workload"
)

func oooConfig(depth int) Config {
	c := MustDefaultConfig(depth)
	c.OutOfOrder = true
	return c
}

func runWorkload(t *testing.T, cfg Config, cls workload.Class, n int) *Result {
	t.Helper()
	g := workload.MustGenerator(workload.Representative(cls))
	r, err := Run(cfg, trace.NewLimitStream(g, n))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestOOOConservation(t *testing.T) {
	r := runWorkload(t, oooConfig(12), workload.Modern, 6000)
	if r.Instructions != 6000 {
		t.Fatalf("retired %d of 6000", r.Instructions)
	}
	var histSum, weighted uint64
	for k, c := range r.IssueHist {
		histSum += c
		weighted += uint64(k) * c
	}
	if histSum != r.Cycles || weighted != r.Instructions {
		t.Errorf("issue histogram inconsistent: %d cycles / %d issued", histSum, weighted)
	}
	if r.UnitOps[UnitRename] != r.Instructions {
		t.Errorf("rename ops %d ≠ instructions %d", r.UnitOps[UnitRename], r.Instructions)
	}
}

func TestOOODeterminism(t *testing.T) {
	a := runWorkload(t, oooConfig(14), workload.SPECInt, 4000)
	b := runWorkload(t, oooConfig(14), workload.SPECInt, 4000)
	if a.Cycles != b.Cycles || a.Hazards != b.Hazards {
		t.Error("out-of-order simulation not deterministic")
	}
}

func TestOOOBeatsInOrderOnStallHeavyCode(t *testing.T) {
	// Out-of-order issue hides load-use and dependency stalls that
	// head-block the in-order queue.
	for _, cls := range []workload.Class{workload.Legacy, workload.Modern, workload.SPECInt} {
		inorder := runWorkload(t, MustDefaultConfig(14), cls, 6000)
		ooo := runWorkload(t, oooConfig(14), cls, 6000)
		if ooo.IPC() < inorder.IPC() {
			t.Errorf("%s: OOO IPC %.3f below in-order %.3f", cls, ooo.IPC(), inorder.IPC())
		}
	}
}

func TestOOOIssuesAroundBlockedHead(t *testing.T) {
	// Back-to-back missing loads with interleaved consumers. Both
	// machines decouple address generation from issue (base producers
	// are captured at decode exit), so the misses overlap either way;
	// out-of-order issue must never be slower, and its broader wins
	// on real code are covered by TestOOOBeatsInOrderOnStallHeavyCode.
	var ins []isa.Instruction
	for i := 0; i < 12; i++ {
		ins = append(ins,
			isa.Instruction{PC: uint64(0x1000 + 16*i), Class: isa.Load,
				Dst: 1, Src1: isa.RegNone, Src2: isa.RegNone,
				Addr: 0x4000_0000 + uint64(i)<<21},
			isa.Instruction{PC: uint64(0x1008 + 16*i), Class: isa.RR,
				Dst: 2, Src1: 1, Src2: isa.RegNone},
		)
	}
	run := func(ooo bool) *Result {
		cfg := idealConfig(10)
		cfg.Hierarchy = MustDefaultConfig(10).Hierarchy
		cfg.OutOfOrder = ooo
		return mustRun(t, cfg, ins)
	}
	inorder := run(false)
	ooo := run(true)
	if ooo.Cycles > inorder.Cycles+5 {
		t.Errorf("OOO %d cycles slower than in-order %d on overlapping misses",
			ooo.Cycles, inorder.Cycles)
	}
}

func TestOOOSelfBaseLoad(t *testing.T) {
	// load r5 ← [r5] must capture the PRIOR writer of r5 at rename,
	// never itself (the in-order engine had the same hazard at issue).
	ins := []isa.Instruction{
		{PC: 0x1000, Class: isa.RR, Dst: 5, Src1: isa.RegNone, Src2: isa.RegNone},
		{PC: 0x1004, Class: isa.Load, Dst: 5, Src1: 5, Src2: isa.RegNone, Addr: 0x1000_0000},
		{PC: 0x1008, Class: isa.RR, Dst: 6, Src1: 5, Src2: isa.RegNone},
	}
	cfg := idealConfig(10)
	cfg.OutOfOrder = true
	r := mustRun(t, cfg, ins)
	if r.Instructions != 3 {
		t.Fatalf("retired %d of 3 (deadlock?)", r.Instructions)
	}
}

func TestOOORespectsTrueDependencies(t *testing.T) {
	// A serial FP chain cannot be reordered: OOO and in-order must
	// take essentially the same time.
	const n, lat = 150, 10
	ins := make([]isa.Instruction, n)
	for i := range ins {
		ins[i] = isa.Instruction{
			PC: uint64(0x1000 + 4*i), Class: isa.FP,
			Dst:  isa.FirstFPR + 1,
			Src1: isa.FirstFPR + 1, Src2: isa.RegNone, FPLat: lat,
		}
	}
	inorder := mustRun(t, idealConfig(10), ins)
	cfg := idealConfig(10)
	cfg.OutOfOrder = true
	ooo := mustRun(t, cfg, ins)
	diff := int64(ooo.Cycles) - int64(inorder.Cycles)
	if diff < -20 || diff > 20 {
		t.Errorf("serial FP chain: OOO %d vs in-order %d cycles", ooo.Cycles, inorder.Cycles)
	}
}

func TestOOOMispredictStillFreezes(t *testing.T) {
	// Misprediction penalties survive out-of-order execution: the
	// front end has nothing correct to fetch.
	mk := func() []isa.Instruction {
		var ins []isa.Instruction
		for b := 0; b < 100; b++ {
			ins = append(ins, isa.Instruction{
				PC: uint64(0x2000 + 64*b), Class: isa.Branch,
				Dst: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone,
				Target: 0x100, Taken: false,
			})
			for k := 0; k < 3; k++ {
				ins = append(ins, isa.Instruction{
					PC: uint64(0x2000 + 64*b + 4 + 4*k), Class: isa.RR,
					Dst: isa.Reg(k), Src1: isa.RegNone, Src2: isa.RegNone,
				})
			}
		}
		return ins
	}
	cfg := oooConfig(20)
	cfg.Hierarchy = nil
	cfg.Predictor = staticPredictor()
	r, err := Run(cfg, trace.NewSliceStream(mk()))
	if err != nil {
		t.Fatal(err)
	}
	if r.Hazards.BranchMispredicts != 100 {
		t.Fatalf("mispredicts = %d", r.Hazards.BranchMispredicts)
	}
	if r.StallCycles[StallBranch] < 500 {
		t.Errorf("branch stalls = %d, want substantial refill penalties",
			r.StallCycles[StallBranch])
	}
}

func TestOOODeepAndShallowDepths(t *testing.T) {
	for _, d := range []int{2, 3, 7, 25} {
		r := runWorkload(t, oooConfig(d), workload.SPECFP, 3000)
		if r.Instructions != 3000 {
			t.Fatalf("depth %d: retired %d", d, r.Instructions)
		}
	}
}

// staticPredictor avoids importing branch in two test files.
func staticPredictor() interface {
	Predict(uint64) bool
	Update(uint64, bool)
	Name() string
} {
	return alwaysTaken{}
}

type alwaysTaken struct{}

func (alwaysTaken) Predict(uint64) bool { return true }
func (alwaysTaken) Update(uint64, bool) {}
func (alwaysTaken) Name() string        { return "always-taken" }
