package fit

import (
	"math"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/power"
	"repro/internal/theory"
	"repro/internal/trace"
	"repro/internal/workload"
)

func runAt(t *testing.T, cls workload.Class, depth, n int) *pipeline.Result {
	t.Helper()
	g := workload.MustGenerator(workload.Representative(cls))
	r, err := pipeline.Run(pipeline.MustDefaultConfig(depth), trace.NewLimitStream(g, n))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestExtractBasics(t *testing.T) {
	r := runAt(t, workload.SPECInt, 10, 20000)
	e, err := Extract(r)
	if err != nil {
		t.Fatal(err)
	}
	if e.Alpha <= 1 || e.Alpha > 4 {
		t.Errorf("alpha = %g, want in (1, 4]", e.Alpha)
	}
	if e.Gamma <= 0 || e.Gamma > 1 {
		t.Errorf("gamma = %g, want in (0, 1]", e.Gamma)
	}
	if e.HazardRate <= 0 || e.HazardRate > 0.5 {
		t.Errorf("hazard rate = %g", e.HazardRate)
	}
	if e.RefDepth != 10 || e.NI != 20000 {
		t.Errorf("bookkeeping: %+v", e)
	}
	if len(e.String()) == 0 {
		t.Error("empty String")
	}
}

func TestExtractFoldsFPIntoAlpha(t *testing.T) {
	// SPECfp's FPU serialization must depress α, not inflate N_H.
	fp, err := Extract(runAt(t, workload.SPECFP, 10, 20000))
	if err != nil {
		t.Fatal(err)
	}
	si, err := Extract(runAt(t, workload.SPECInt, 10, 20000))
	if err != nil {
		t.Fatal(err)
	}
	if !(fp.Alpha < si.Alpha*0.5) {
		t.Errorf("FP alpha %.2f not well below SPECint %.2f", fp.Alpha, si.Alpha)
	}
	// N_H must not count FP structural episodes.
	r := runAt(t, workload.SPECFP, 10, 20000)
	if fp.NH >= r.Hazards.Total() {
		t.Errorf("FP episodes not excluded: NH=%d total=%d", fp.NH, r.Hazards.Total())
	}
}

func TestExtractClassOrdering(t *testing.T) {
	// Legacy assembler code has the lowest integer ILP.
	lg, _ := Extract(runAt(t, workload.Legacy, 10, 20000))
	si, _ := Extract(runAt(t, workload.SPECInt, 10, 20000))
	if !(lg.Alpha < si.Alpha) {
		t.Errorf("legacy alpha %.2f not below SPECint %.2f", lg.Alpha, si.Alpha)
	}
}

func TestExtractErrors(t *testing.T) {
	var r pipeline.Result
	r.Config = pipeline.MustDefaultConfig(10)
	if _, err := Extract(&r); err == nil {
		t.Error("empty run accepted")
	}
}

func TestApply(t *testing.T) {
	e := Extraction{Alpha: 1.7, Gamma: 0.4, HazardRate: 0.05}
	p := e.Apply(theory.Default())
	if p.Alpha != 1.7 || p.Gamma != 0.4 || p.HazardRate != 0.05 {
		t.Errorf("Apply lost values: %+v", p)
	}
	if p.TP != theory.DefaultTP {
		t.Error("Apply touched technology constants")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestScaleFactor(t *testing.T) {
	model := []float64{1, 2, 3}
	data := []float64{2, 4, 6}
	k, err := ScaleFactor(model, data)
	if err != nil || math.Abs(k-2) > 1e-12 {
		t.Fatalf("k = %g err=%v", k, err)
	}
	if _, err := ScaleFactor([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := ScaleFactor([]float64{0, 0}, []float64{1, 2}); err == nil {
		t.Error("zero model accepted")
	}
}

func TestTheoryOverlay(t *testing.T) {
	// Overlaying a theory curve on data generated from the same
	// theory (arbitrary scale) must recover R² ≈ 1.
	p := theory.Default()
	depths := []float64{2, 4, 6, 8, 10, 14, 18, 22, 25}
	data := make([]float64, len(depths))
	for i, d := range depths {
		data[i] = 7.25 * p.Metric(d)
	}
	curve, r2, err := TheoryOverlay(p, depths, data)
	if err != nil {
		t.Fatal(err)
	}
	if r2 < 0.999999 {
		t.Errorf("self-overlay R² = %g", r2)
	}
	for i := range curve {
		if math.Abs(curve[i]-data[i]) > 1e-9*data[i] {
			t.Errorf("curve[%d] = %g, want %g", i, curve[i], data[i])
		}
	}
}

func TestTheoryOverlayOnSimulation(t *testing.T) {
	// The paper's central validation: theory parameterized from ONE
	// simulated depth, scaled by one factor, should track the
	// simulated gated BIPS³/W curve reasonably (Figs. 4a–c).
	g := workload.MustGenerator(workload.Representative(workload.SPECInt))
	pm := power.DefaultModel()
	var depths, sim []float64
	var ref *pipeline.Result
	for d := 4; d <= 25; d += 3 {
		g.Reset()
		r, err := pipeline.Run(pipeline.MustDefaultConfig(d), trace.NewLimitStream(g, 20000))
		if err != nil {
			t.Fatal(err)
		}
		if d == 10 {
			ref = r
		}
		depths = append(depths, float64(d))
		b := r.BIPS()
		sim = append(sim, b*b*b/pm.Evaluate(r, true).Total())
	}
	if ref == nil {
		t.Fatal("no reference depth run")
	}
	ex, err := Extract(ref)
	if err != nil {
		t.Fatal(err)
	}
	p := ex.Apply(theory.Default()).WithClockGating(1)
	_, r2, err := TheoryOverlay(p, depths, sim)
	if err != nil {
		t.Fatal(err)
	}
	// The theory is approximate; require it to explain the bulk of
	// the variance, as the paper's figures show.
	if r2 < 0.5 {
		t.Errorf("theory overlay R² = %.3f, want ≥ 0.5", r2)
	}
}

func TestFitTauRecoversSyntheticModel(t *testing.T) {
	// Data generated exactly from the two-parameter model must be
	// recovered to machine precision.
	const tp, to = 140.0, 2.5
	alpha, gp := 1.85, 0.031
	var depths, taus []float64
	for d := 2.0; d <= 25; d++ {
		depths = append(depths, d)
		taus = append(taus, (to+tp/d)/alpha+gp*(to*d+tp))
	}
	a, g, err := FitTau(depths, taus, tp, to)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-alpha) > 1e-9 || math.Abs(g-gp) > 1e-12 {
		t.Errorf("recovered α=%g γ'=%g, want %g, %g", a, g, alpha, gp)
	}
}

func TestFitTauHazardFreeWorkload(t *testing.T) {
	// τ = t_s/α exactly: the fitted γ' must clamp to zero, not go
	// negative.
	const tp, to = 140.0, 2.5
	var depths, taus []float64
	for d := 2.0; d <= 25; d++ {
		depths = append(depths, d)
		taus = append(taus, (to+tp/d)/2.2)
	}
	a, g, err := FitTau(depths, taus, tp, to)
	if err != nil {
		t.Fatal(err)
	}
	if g < 0 || g > 1e-12 {
		t.Errorf("γ' = %g, want ≈ 0 (non-negative)", g)
	}
	if math.Abs(a-2.2) > 0.05 {
		t.Errorf("α = %g, want ≈ 2.2", a)
	}
}

func TestFitTauErrors(t *testing.T) {
	if _, _, err := FitTau([]float64{5}, []float64{10}, 140, 2.5); err == nil {
		t.Error("single point accepted")
	}
	if _, _, err := FitTau([]float64{5, 5}, []float64{10, 10}, 140, 2.5); err == nil {
		t.Error("degenerate design accepted")
	}
	if _, _, err := FitTau([]float64{5, 10}, []float64{1, 2, 3}, 140, 2.5); err == nil {
		t.Error("mismatched lengths accepted")
	}
}

func TestExtractCurveGammaCap(t *testing.T) {
	// When the fitted γ' exceeds what the single-run hazard count can
	// explain with γ ≤ 1, the event rate absorbs the excess and γ
	// pins at 1; the product γ·h must equal the fitted γ' either way.
	g := workload.MustGenerator(workload.Representative(workload.Legacy))
	var depths, taus []float64
	var ref *pipeline.Result
	for d := 4; d <= 25; d += 3 {
		g.Reset()
		r, err := pipeline.Run(pipeline.MustDefaultConfig(d), trace.NewLimitStream(g, 8000))
		if err != nil {
			t.Fatal(err)
		}
		if d == 10 {
			ref = r
		}
		depths = append(depths, float64(d))
		taus = append(taus, r.TimePerInstructionFO4())
	}
	ex, err := ExtractCurve(depths, taus, ref)
	if err != nil {
		t.Fatal(err)
	}
	_, gp, err := FitTau(depths, taus, ref.Config.TP, ref.Config.TO)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Gamma > 1+1e-12 || ex.Gamma <= 0 {
		t.Errorf("γ = %g out of (0, 1]", ex.Gamma)
	}
	if got := ex.Gamma * ex.HazardRate; math.Abs(got-gp) > 1e-9 {
		t.Errorf("γ·h = %g ≠ fitted γ' %g", got, gp)
	}
}
