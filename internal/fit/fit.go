// Package fit connects simulation to theory: it extracts the
// analytical model's workload parameters (α, γ, N_H/N_I) from a single
// simulation run — exactly the paper's methodology ("all of the input
// parameters to the theory can be obtained with ... at most the
// simulation of a single pipeline depth") — and fits theory curves to
// simulated data with the paper's single adjustable scale factor.
package fit

import (
	"errors"
	"fmt"

	"repro/internal/mathx"
	"repro/internal/pipeline"
	"repro/internal/theory"
)

// Extraction holds workload parameters measured from one simulation.
type Extraction struct {
	Alpha      float64 // α: instructions per busy cycle
	Gamma      float64 // γ: stall cycles per hazard per pipeline stage
	HazardRate float64 // N_H/N_I
	NI         uint64  // instructions
	NH         uint64  // hazard events
	RefDepth   int     // depth the parameters were measured at
}

// Extract measures the theory parameters from a run. Following the
// paper (§4), floating-point serialization is folded into α — "this
// greatly reduces the degree of superscalar processing" — rather than
// counted as hazards: FPU-busy stall cycles are treated as busy time,
// and FP structural episodes are excluded from N_H.
func Extract(r *pipeline.Result) (Extraction, error) {
	if r.Instructions == 0 {
		return Extraction{}, errors.New("fit: empty run")
	}
	busy := r.IssueCycles + r.StallCycles[pipeline.StallFP]
	if busy == 0 {
		return Extraction{}, errors.New("fit: no busy cycles")
	}
	nh := r.Hazards.Total() - r.Hazards.FPEpisodes
	stalls := r.TotalStallCycles() - r.StallCycles[pipeline.StallFP]
	e := Extraction{
		Alpha:      float64(r.Instructions) / float64(busy),
		HazardRate: float64(nh) / float64(r.Instructions),
		NI:         r.Instructions,
		NH:         nh,
		RefDepth:   r.Config.Plan.Depth,
	}
	if nh > 0 {
		e.Gamma = float64(stalls) / float64(nh) / float64(r.Config.Plan.Depth)
		if e.Gamma > 1 {
			// γ is a pipeline fraction; clamp pathological runs where
			// fixed-time memory latency exceeds one pipeline refill.
			e.Gamma = 1
		}
	}
	return e, nil
}

// Apply fills the workload-dependent fields of a theory parameter set
// from the extraction, leaving technology and metric choices intact.
func (e Extraction) Apply(base theory.Params) theory.Params {
	base.Alpha = e.Alpha
	base.Gamma = e.Gamma
	base.HazardRate = e.HazardRate
	return base
}

// String summarizes the extraction.
func (e Extraction) String() string {
	return fmt.Sprintf("fit.Extraction{α=%.3f γ=%.3f N_H/N_I=%.4f at depth %d, N_I=%d}",
		e.Alpha, e.Gamma, e.HazardRate, e.RefDepth, e.NI)
}

// FitTau fits the performance model τ(p) = (1/α)·t_s(p) + γ'·(t_o·p + t_p)
// to a measured time-per-instruction curve by linear least squares in
// the two unknowns 1/α and γ' = γ·N_H/N_I. This is the curve-level
// counterpart of single-depth extraction: because the simulator's
// hazard costs are not exactly linear in depth (fixed-time memory
// latency, stage quantization), the curve fit yields the effective
// parameters that make the analytic model track the simulation, as
// the paper's overlaid theory curves do.
func FitTau(depths, taus []float64, tp, to float64) (alpha, gammaPrime float64, err error) {
	if len(depths) != len(taus) || len(depths) < 2 {
		return 0, 0, errors.New("fit: need ≥2 matched points")
	}
	// Normal equations for τ ≈ c1·f1 + c2·f2 with f1 = t_s, f2 = t_o·p + t_p.
	var a11, a12, a22, b1, b2 float64
	for i, d := range depths {
		f1 := to + tp/d
		f2 := to*d + tp
		a11 += f1 * f1
		a12 += f1 * f2
		a22 += f2 * f2
		b1 += f1 * taus[i]
		b2 += f2 * taus[i]
	}
	det := a11*a22 - a12*a12
	if det == 0 {
		return 0, 0, errors.New("fit: degenerate design (identical depths)")
	}
	c1 := (b1*a22 - b2*a12) / det
	c2 := (a11*b2 - a12*b1) / det
	if c1 <= 0 {
		return 0, 0, errors.New("fit: non-positive busy coefficient")
	}
	if c2 < 0 {
		c2 = 0
	}
	return 1 / c1, c2, nil
}

// ExtractCurve measures the theory parameters from a full sweep: α and
// γ' from the τ(p) curve fit, with the hazard count N_H/N_I taken from
// the run nearest refDepth so that γ and N_H/N_I remain individually
// meaningful (their product is the fitted γ').
func ExtractCurve(depths, taus []float64, ref *pipeline.Result) (Extraction, error) {
	single, err := Extract(ref)
	if err != nil {
		return Extraction{}, err
	}
	alpha, gp, err := FitTau(depths, taus, ref.Config.TP, ref.Config.TO)
	if err != nil {
		return Extraction{}, err
	}
	e := single
	e.Alpha = alpha
	if single.HazardRate > 0 {
		e.Gamma = gp / single.HazardRate
		if e.Gamma > 1 {
			// γ is a pipeline fraction ≤ 1; preserve the fitted
			// product by growing the event rate instead.
			e.Gamma = 1
			e.HazardRate = gp
		}
	} else {
		e.Gamma, e.HazardRate = 0, 0
	}
	return e, nil
}

// ScaleFactor returns the least-squares multiplicative factor k
// minimizing Σ (k·model_i − data_i)², the paper's "only adjustable
// parameter being the overall scale factor" when overlaying theory on
// simulation (Figs. 4–5).
func ScaleFactor(model, data []float64) (float64, error) {
	if len(model) != len(data) || len(model) == 0 {
		return 0, errors.New("fit: mismatched curves")
	}
	var num, den float64
	for i := range model {
		num += model[i] * data[i]
		den += model[i] * model[i]
	}
	if den == 0 {
		return 0, errors.New("fit: zero model curve")
	}
	return num / den, nil
}

// TheoryOverlay evaluates the theory metric at the given depths and
// scales it onto the simulated data, returning the scaled curve and
// the R² of the overlay.
func TheoryOverlay(p theory.Params, depths, simData []float64) (curve []float64, r2 float64, err error) {
	model := make([]float64, len(depths))
	for i, d := range depths {
		model[i] = p.Metric(d)
	}
	k, err := ScaleFactor(model, simData)
	if err != nil {
		return nil, 0, err
	}
	for i := range model {
		model[i] *= k
	}
	return model, mathx.RSquared(simData, model), nil
}

// CubicPeak is re-exported from mathx for convenience: the paper's
// "blind least squares fit to a cubic function" peak-finding analysis.
func CubicPeak(depths, values []float64) (peak float64, interior bool, err error) {
	return mathx.CubicPeak(depths, values)
}
