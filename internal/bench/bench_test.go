package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func TestPhaseFrom(t *testing.T) {
	var h telemetry.Histogram
	if p := PhaseFrom(&h); p != (Phase{}) {
		t.Errorf("empty histogram phase = %+v, want zero", p)
	}
	h.Observe(100)
	h.Observe(300)
	p := PhaseFrom(&h)
	if p.Count != 2 || p.MeanUS != 200 {
		t.Errorf("phase = %+v, want count 2 mean 200", p)
	}
	if p.P50US > p.P95US || p.P95US > p.MaxUS {
		t.Errorf("phase quantiles not monotone: %+v", p)
	}
	if p.MaxUS != 300 {
		t.Errorf("max = %g, want 300", p.MaxUS)
	}
}

func TestAppendAccumulatesRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_sweep.json")
	start := time.Now().Add(-2 * time.Second)
	for i := 0; i < 2; i++ {
		rec := NewRecord("sweep", start)
		rec.Workload = "si95-gcc"
		rec.Points = 24
		rec.CacheHits, rec.CacheMisses, rec.CacheHitRate = 20, 4, 20.0/24
		rec.Finish(start)
		if err := Append(path, rec); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := 0
	for _, line := range splitLines(data) {
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("line %d not valid JSON: %v", lines+1, err)
		}
		if rec.Tool != "sweep" || rec.Points != 24 {
			t.Errorf("record = %+v", rec)
		}
		if rec.WallSec <= 0 || rec.PointsPerSec <= 0 {
			t.Errorf("throughput not derived: wall=%g pps=%g", rec.WallSec, rec.PointsPerSec)
		}
		lines++
	}
	if lines != 2 {
		t.Fatalf("file holds %d records, want 2", lines)
	}
}

func splitLines(data []byte) [][]byte {
	var out [][]byte
	start := 0
	for i, b := range data {
		if b == '\n' {
			if i > start {
				out = append(out, data[start:i])
			}
			start = i + 1
		}
	}
	if start < len(data) {
		out = append(out, data[start:])
	}
	return out
}
