package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func TestPhaseFrom(t *testing.T) {
	var h telemetry.Histogram
	if p := PhaseFrom(&h); p != (Phase{}) {
		t.Errorf("empty histogram phase = %+v, want zero", p)
	}
	h.Observe(100)
	h.Observe(300)
	p := PhaseFrom(&h)
	if p.Count != 2 || p.MeanUS != 200 {
		t.Errorf("phase = %+v, want count 2 mean 200", p)
	}
	if p.P50US > p.P95US || p.P95US > p.MaxUS {
		t.Errorf("phase quantiles not monotone: %+v", p)
	}
	if p.MaxUS != 300 {
		t.Errorf("max = %g, want 300", p.MaxUS)
	}
}

func TestPhaseFromEdgeCases(t *testing.T) {
	// Single observation: every quantile is that observation.
	var single telemetry.Histogram
	single.Observe(250)
	p := PhaseFrom(&single)
	if p.Count != 1 || p.P50US != 250 || p.P95US != 250 || p.P99US != 250 || p.MaxUS != 250 {
		t.Errorf("single-observation phase = %+v, want all quantiles 250", p)
	}
	// All-equal observations: quantiles collapse, count is preserved.
	var equal telemetry.Histogram
	equal.ObserveN(70, 500)
	p = PhaseFrom(&equal)
	if p.Count != 500 || p.P50US != 70 || p.P99US != 70 || p.MaxUS != 70 || p.MeanUS != 70 {
		t.Errorf("all-equal phase = %+v, want 500×70", p)
	}
}

func TestLoadRoundTripsAndTolerateMissing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	// Missing file: empty trajectory, no error.
	recs, err := Load(path)
	if err != nil || recs != nil {
		t.Fatalf("Load(missing) = %v, %v", recs, err)
	}
	start := time.Now().Add(-time.Second)
	rec := NewRecord("sweep", start)
	rec.Points = 5
	rec.Phases = map[string]Phase{"point": {Count: 5, P50US: 100, P95US: 200, P99US: 250, MaxUS: 300}}
	rec.Finish(start)
	if err := Append(path, rec); err != nil {
		t.Fatal(err)
	}
	recs, err = Load(path)
	if err != nil || len(recs) != 1 {
		t.Fatalf("Load = %d records, %v", len(recs), err)
	}
	if got := recs[0].Phases["point"]; got != rec.Phases["point"] {
		t.Errorf("phase round trip: %+v != %+v", got, rec.Phases["point"])
	}
	// Corruption is an error, not a skip.
	if err := os.WriteFile(path, []byte("{bad\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("Load(corrupt) did not error")
	}
}

func TestAppendAccumulatesRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_sweep.json")
	start := time.Now().Add(-2 * time.Second)
	for i := 0; i < 2; i++ {
		rec := NewRecord("sweep", start)
		rec.Workload = "si95-gcc"
		rec.Points = 24
		rec.CacheHits, rec.CacheMisses, rec.CacheHitRate = 20, 4, 20.0/24
		rec.Finish(start)
		if err := Append(path, rec); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := 0
	for _, line := range splitLines(data) {
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("line %d not valid JSON: %v", lines+1, err)
		}
		if rec.Tool != "sweep" || rec.Points != 24 {
			t.Errorf("record = %+v", rec)
		}
		if rec.WallSec <= 0 || rec.PointsPerSec <= 0 {
			t.Errorf("throughput not derived: wall=%g pps=%g", rec.WallSec, rec.PointsPerSec)
		}
		lines++
	}
	if lines != 2 {
		t.Fatalf("file holds %d records, want 2", lines)
	}
}

func splitLines(data []byte) [][]byte {
	var out [][]byte
	start := 0
	for i, b := range data {
		if b == '\n' {
			if i > start {
				out = append(out, data[start:i])
			}
			start = i + 1
		}
	}
	if start < len(data) {
		out = append(out, data[start:])
	}
	return out
}
