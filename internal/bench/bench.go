// Package bench appends per-run performance records to a BENCH
// trajectory file (one JSON object per line, conventionally
// BENCH_sweep.json): wall time, throughput, cache effectiveness and
// per-phase duration histograms. Every CI run and local sweep appends
// one record, so "did this PR make sweeps slower?" is answerable from
// the artifact trail instead of folklore.
package bench

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/telemetry"
)

// Phase summarizes one duration histogram (microseconds).
type Phase struct {
	Count  uint64  `json:"count"`
	MeanUS float64 `json:"mean_us"`
	P50US  float64 `json:"p50_us"`
	P95US  float64 `json:"p95_us"`
	P99US  float64 `json:"p99_us,omitempty"`
	MaxUS  float64 `json:"max_us"`
}

// PhaseFrom digests a telemetry histogram of microsecond durations.
// The zero Phase is returned for an empty histogram.
func PhaseFrom(h *telemetry.Histogram) Phase {
	n := h.Count()
	if n == 0 {
		return Phase{}
	}
	return Phase{
		Count:  n,
		MeanUS: h.Mean(),
		P50US:  h.Quantile(0.50),
		P95US:  h.Quantile(0.95),
		P99US:  h.Quantile(0.99),
		MaxUS:  h.Quantile(1),
	}
}

// Record is one run's performance summary.
type Record struct {
	Tool      string `json:"tool"`
	StartedAt string `json:"started_at"`
	GoVersion string `json:"go_version"`
	OS        string `json:"os"`
	Arch      string `json:"arch"`
	NumCPU    int    `json:"num_cpu"`

	Workload     string  `json:"workload,omitempty"`
	Points       int     `json:"points"`
	WallSec      float64 `json:"wall_sec"`
	PointsPerSec float64 `json:"points_per_sec"`

	// Server-run figures (the depthd load harness): HTTP request count
	// and throughput. Requests differ from Points — one request may
	// cover a whole study or none (status polls), so both axes are
	// recorded.
	Requests       uint64  `json:"requests,omitempty"`
	RequestsPerSec float64 `json:"requests_per_sec,omitempty"`

	CacheHits    uint64  `json:"cache_hits"`
	CacheMisses  uint64  `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	FitErrors    uint64  `json:"fit_errors"`

	// Conformance-run figures (cmd/conformance): per-check verdict
	// counts, total invariant violations, and the invariant-engine
	// overhead measurement — design-point throughput with the engine
	// detached (the default nil-Recorder path) and attached, plus the
	// relative cost of attaching. The disabled-mode engine is a single
	// nil-check branch per simulated cycle, so PointsPerSecOff is
	// directly comparable against the BENCH_sweep.json trajectory.
	ChecksPassed    int     `json:"checks_passed,omitempty"`
	ChecksFailed    int     `json:"checks_failed,omitempty"`
	Violations      uint64  `json:"violations,omitempty"`
	PointsPerSecOff float64 `json:"points_per_sec_invariants_off,omitempty"`
	PointsPerSecOn  float64 `json:"points_per_sec_invariants_on,omitempty"`
	// InvariantOverhead is PointsPerSecOff/PointsPerSecOn − 1: the
	// fractional slowdown of enabling the engine.
	InvariantOverhead float64 `json:"invariant_overhead_frac,omitempty"`

	// Observability figures (the depthd load harness with the ledger
	// and SLO engine on): canonical ledger throughput and loss, and the
	// worst fast-window burn rate at the end of the run. A load test
	// that drops ledger events or ends while burning is visible in the
	// trajectory, not just in that run's logs.
	LedgerEvents uint64 `json:"ledger_events,omitempty"`
	LedgerDrops  uint64 `json:"ledger_drops,omitempty"`
	// LedgerDropFrac is Drops/(Events+Drops) — the shed fraction.
	LedgerDropFrac float64 `json:"ledger_drop_frac,omitempty"`
	// MaxBurnRate is the highest fast-window SLO burn rate across
	// objectives at the end of the run (1.0 = burning the budget
	// exactly at the sustainable pace).
	MaxBurnRate float64 `json:"max_burn_rate,omitempty"`

	// PointsPerSecPerCycle is design-point throughput with the
	// per-cycle reference engine forced (pipeline.EnginePerCycle) —
	// the "before" of the skip-ahead engine, measured in the same run
	// that measured PointsPerSecOff so the pair is an in-record
	// before/after. benchdiff fails the gate when the optimized engine
	// drops below this baseline: a skip-ahead path slower than the
	// stepping it replaces has lost its reason to exist.
	PointsPerSecPerCycle float64 `json:"points_per_sec_per_cycle,omitempty"`
	// SpeedupVsSeed is PointsPerSec (or PointsPerSecOff for
	// conformance records) divided by the same figure in the
	// trajectory's oldest record — cumulative speedup over the life of
	// the trajectory, so one field answers "how much faster than the
	// seed is this now?" without diffing files by hand.
	SpeedupVsSeed float64 `json:"speedup_vs_seed,omitempty"`

	// Alloc-guard figures (the AllocsPerRun guard in internal/power,
	// tool "allocguard"): steady-state heap allocations per simulated
	// cycle in pipeline.Run — per-cycle and skip-ahead engines
	// separately — and per power evaluation in power.Evaluate, plus
	// per record iterated from a packed trace. Deterministic counts,
	// not throughput — benchdiff gates them on an absolute band around
	// zero, like the other near-zero fractions.
	AllocsPerCycle        float64 `json:"allocs_per_cycle,omitempty"`
	AllocsPerCycleFast    float64 `json:"allocs_per_cycle_fast,omitempty"`
	AllocsPerEval         float64 `json:"allocs_per_eval,omitempty"`
	AllocsPerPackedRecord float64 `json:"allocs_per_packed_record,omitempty"`

	// Phases holds per-phase duration histograms, e.g. "point" for
	// simulated design points and "point_cached" for cache hits.
	Phases map[string]Phase `json:"phases,omitempty"`
}

// SetLedger fills the ledger figures and derives the drop fraction.
func (r *Record) SetLedger(written, dropped uint64) {
	r.LedgerEvents, r.LedgerDrops = written, dropped
	if total := written + dropped; total > 0 {
		r.LedgerDropFrac = float64(dropped) / float64(total)
	}
}

// NewRecord stamps a record with the environment and start time.
func NewRecord(tool string, start time.Time) Record {
	return Record{
		Tool:      tool,
		StartedAt: start.UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
}

// Finish records wall time and derives the points/sec throughput.
func (r *Record) Finish(start time.Time) {
	r.WallSec = time.Since(start).Seconds()
	if r.WallSec > 0 {
		r.PointsPerSec = float64(r.Points) / r.WallSec
		if r.Requests > 0 {
			r.RequestsPerSec = float64(r.Requests) / r.WallSec
		}
	}
}

// SeedRate returns the metric's value in the oldest record of the
// trajectory at path where it is positive — the "seed" figure that
// SpeedupVsSeed is computed against. It returns 0 (and no error) when
// the trajectory is missing, unreadable or holds no such record:
// speedup-vs-seed is best-effort provenance, never a reason to fail
// the run that wants to append to the trajectory.
func SeedRate(path string, metric func(Record) float64) float64 {
	recs, err := Load(path)
	if err != nil {
		return 0
	}
	for _, rec := range recs {
		if v := metric(rec); v > 0 {
			return v
		}
	}
	return 0
}

// Load reads a trajectory file back into records, in append order.
// A missing file loads as an empty trajectory, not an error — a fresh
// checkout has no history yet. Blank lines are skipped; a malformed
// line is an error (the trajectory is append-only, so corruption means
// something is wrong, not merely old).
func Load(path string) ([]Record, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	var recs []Record
	for i, line := range bytes.Split(data, []byte("\n")) {
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("bench: %s line %d: %w", path, i+1, err)
		}
		recs = append(recs, rec)
	}
	return recs, nil
}

// Append writes the record as one JSON line at the end of path,
// creating the file if needed — the trajectory grows monotonically
// across runs and survives interleaved writers (line-atomic appends).
func Append(path string, rec Record) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("bench: encode: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	_, werr := f.Write(append(data, '\n'))
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("bench: append: %w", werr)
	}
	return nil
}
