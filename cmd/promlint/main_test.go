package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const validExposition = "# TYPE ok_metric counter\nok_metric 1\n"

func TestRunExitCodes(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.prom")
	if err := os.WriteFile(good, []byte(validExposition), 0o644); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "bad.prom")
	if err := os.WriteFile(bad, []byte("metric-name{} 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	tests := []struct {
		name  string
		args  []string
		stdin string
		want  int
	}{
		{"valid file", []string{good}, "", 0},
		{"malformed file", []string{bad}, "", 1},
		{"valid stdin", nil, validExposition, 0},
		{"valid stdin via dash", []string{"-"}, validExposition, 0},
		{"empty stdin", nil, "", 1},
		{"missing file", []string{filepath.Join(dir, "absent.prom")}, "", 2},
		{"too many args", []string{good, bad}, "", 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var stderr bytes.Buffer
			got := run(tt.args, strings.NewReader(tt.stdin), &stderr)
			if got != tt.want {
				t.Fatalf("run(%q) = %d, want %d\nstderr:\n%s",
					tt.args, got, tt.want, stderr.String())
			}
			if tt.want != 0 && stderr.Len() == 0 {
				t.Error("non-zero exit with empty stderr")
			}
		})
	}
}
