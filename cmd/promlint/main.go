// Command promlint validates a Prometheus text exposition dump — the
// CI gate for the /metrics endpoint.
//
// Usage:
//
//	promlint metrics.prom
//	curl -s localhost:6060/metrics | promlint
//
// Exit status is 0 for a well-formed exposition with at least one
// sample, 1 for a lint failure, 2 for a usage or I/O error.
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/telemetry/promexp"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stderr))
}

func run(args []string, stdin io.Reader, stderr io.Writer) int {
	if len(args) > 1 {
		fmt.Fprintln(stderr, "usage: promlint [file]")
		return 2
	}
	in, name := stdin, "<stdin>"
	if len(args) == 1 && args[0] != "-" {
		f, err := os.Open(args[0])
		if err != nil {
			fmt.Fprintln(stderr, "promlint:", err)
			return 2
		}
		defer f.Close()
		in, name = f, args[0]
	}
	if err := promexp.Lint(in); err != nil {
		fmt.Fprintf(stderr, "promlint: %s: %v\n", name, err)
		return 1
	}
	return 0
}
