// Command promlint validates a Prometheus text exposition dump — the
// CI gate for the /metrics endpoint.
//
// Usage:
//
//	promlint metrics.prom
//	curl -s localhost:6060/metrics | promlint
//
// Exit status is 0 for a well-formed exposition with at least one
// sample, 1 otherwise.
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/telemetry/promexp"
)

func main() {
	var in io.Reader = os.Stdin
	name := "<stdin>"
	if len(os.Args) > 1 && os.Args[1] != "-" {
		f, err := os.Open(os.Args[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, "promlint:", err)
			os.Exit(1)
		}
		defer f.Close()
		in, name = f, os.Args[1]
	}
	if err := promexp.Lint(in); err != nil {
		fmt.Fprintf(os.Stderr, "promlint: %s: %v\n", name, err)
		os.Exit(1)
	}
}
