// Command experiments regenerates the paper's figures and headline
// numbers from this repository's theory and simulator.
//
// Usage:
//
//	experiments -fig all                 # every experiment, full settings
//	experiments -fig fig6,fig7           # selected experiments
//	experiments -fig fig4b -n 10000      # shorter traces
//	experiments -fig all -csv out/       # also dump CSV data files
//	experiments -list                    # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// writeSummaries sweeps the catalog and saves JSON digests for reuse.
func writeSummaries(path string, opt experiments.Options) error {
	cfg := core.StudyConfig{
		Instructions: opt.Instructions,
		Warmup:       opt.Warmup,
		Depths:       opt.Depths,
		Parallelism:  opt.Parallelism,
	}
	sweeps, err := core.RunCatalog(cfg, workload.All())
	if err != nil {
		return err
	}
	sums, err := core.SummarizeCatalog(sweeps)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := core.WriteSummaries(f, sums); err != nil {
		return err
	}
	fmt.Printf("wrote %d workload summaries to %s\n", len(sums), path)
	return nil
}

func main() {
	var (
		fig     = flag.String("fig", "all", "comma-separated experiment ids, or 'all'")
		n       = flag.Int("n", 0, "instructions per simulation run (default 30000)")
		warm    = flag.Int("warmup", 0, "warm-up instructions (default 30000, -1 for none)")
		nwl     = flag.Int("workloads", 0, "cap the workload catalog size (0 = all 55)")
		csvDir  = flag.String("csv", "", "directory to write per-figure CSV data files")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		plot    = flag.Bool("plot", false, "render ASCII charts under each figure")
		summary = flag.String("summary", "", "write JSON sweep summaries of the full catalog to this file and exit")
		md      = flag.String("md", "", "run every experiment and write a Markdown report to this file")
		par     = flag.Int("parallel", 0, "concurrent workload sweeps (default NumCPU)")
		timings = flag.Bool("time", false, "print per-experiment wall time")

		metricsOut = flag.String("metrics-out", "", "write a JSONL metrics dump (manifest + per-experiment timing and row counts) to this file")
		pprofAddr  = flag.String("pprof", "", "serve /debug/pprof and /debug/vars on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-9s %s\n", e.ID, e.Title)
		}
		return
	}

	if *pprofAddr != "" {
		addr, err := telemetry.ServeDebug(*pprofAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pprof:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "experiments: debug server at http://%s/debug/pprof/\n", addr)
	}
	var reg *telemetry.Registry
	if *metricsOut != "" || *pprofAddr != "" {
		reg = telemetry.NewRegistry()
		reg.PublishExpvar("repro_metrics")
	}
	runStart := time.Now()

	opt := experiments.Options{
		Instructions: *n,
		Warmup:       *warm,
		Workloads:    *nwl,
		Parallelism:  *par,
	}

	if *summary != "" {
		if err := writeSummaries(*summary, opt); err != nil {
			fmt.Fprintln(os.Stderr, "summary:", err)
			os.Exit(1)
		}
		return
	}

	if *md != "" {
		results := experiments.RunAll(opt)
		f, err := os.Create(*md)
		if err != nil {
			fmt.Fprintln(os.Stderr, "md:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := experiments.WriteMarkdown(f, results); err != nil {
			fmt.Fprintln(os.Stderr, "md:", err)
			os.Exit(1)
		}
		bad := 0
		for _, r := range results {
			if r.Err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", r.Experiment.ID, r.Err)
				bad++
			}
		}
		fmt.Printf("wrote %d experiment reports to %s (%d failed)\n",
			len(results), *md, bad)
		if bad > 0 {
			os.Exit(1)
		}
		return
	}

	var ids []string
	if *fig == "all" {
		ids = experiments.IDs()
	} else {
		ids = strings.Split(*fig, ",")
	}

	exit := 0
	for _, id := range ids {
		id = strings.TrimSpace(id)
		e, ok := experiments.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
			exit = 2
			continue
		}
		start := time.Now()
		rep, err := e.Run(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			exit = 1
			if reg != nil {
				reg.Counter("experiments.failed").Add(1)
			}
			continue
		}
		if reg != nil {
			reg.Counter("experiments.completed").Add(1)
			reg.Counter("experiments.rows").Add(uint64(len(rep.Rows)))
			reg.Gauge("experiments.seconds." + id).Set(time.Since(start).Seconds())
		}
		render := rep.Render
		if *plot {
			render = rep.RenderWithChart
		}
		if err := render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "%s: render: %v\n", id, err)
			exit = 1
		}
		if *timings {
			fmt.Printf("(%s took %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		}
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "csv dir: %v\n", err)
				exit = 1
				continue
			}
			path := filepath.Join(*csvDir, id+".csv")
			if err := os.WriteFile(path, []byte(rep.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "%s: write csv: %v\n", id, err)
				exit = 1
			}
		}
	}

	if *metricsOut != "" {
		man := telemetry.NewManifest("experiments")
		man.SetParam("figures", strings.Join(ids, ","))
		if *n != 0 {
			man.SetParam("instructions", strconv.Itoa(*n))
		}
		man.ConfigHash = telemetry.Fingerprint(ids...)
		man.Finish(runStart)
		f, err := os.Create(*metricsOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "metrics-out:", err)
			os.Exit(1)
		}
		werr := reg.WriteJSONL(f, &man)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, "metrics-out:", werr)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "experiments: wrote metrics to %s\n", *metricsOut)
	}
	os.Exit(exit)
}
