// Command experiments regenerates the paper's figures and headline
// numbers from this repository's theory and simulator.
//
// Usage:
//
//	experiments -fig all                 # every experiment, full settings
//	experiments -fig fig6,fig7           # selected experiments
//	experiments -fig fig4b -n 10000      # shorter traces
//	experiments -fig all -csv out/       # also dump CSV data files
//	experiments -fig all -cache-dir d    # memoize simulated design points
//	experiments -list                    # list experiment ids
//
// Observability:
//
//	experiments -pprof localhost:6060    # /debug/pprof, /debug/vars,
//	                                     # /metrics, /progress, /dash
//	experiments -log-format json         # structured diagnostics
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/logx"
	"repro/internal/profile"
	"repro/internal/resultcache"
	"repro/internal/serve/spec"
	"repro/internal/telemetry"
	"repro/internal/telemetry/promexp"
	"repro/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// writeSummaries sweeps the catalog and saves JSON digests for reuse.
func writeSummaries(path string, opt experiments.Options, stdout io.Writer) error {
	cfg := core.StudyConfig{
		Instructions: opt.Instructions,
		Warmup:       opt.Warmup,
		Depths:       opt.Depths,
		Parallelism:  opt.Parallelism,
		Cache:        opt.Cache,
		Metrics:      opt.Metrics,
		Progress:     opt.Progress,
	}
	sweeps, err := core.RunCatalog(cfg, workload.All())
	if err != nil {
		return err
	}
	sums, err := core.SummarizeCatalog(sweeps)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := core.WriteSummaries(f, sums); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %d workload summaries to %s\n", len(sums), path)
	return nil
}

// openCache opens the result cache named by the CLI flags; a nil
// cache (empty dir) disables memoization entirely.
func openCache(dir string, readonly, clear bool, reg *telemetry.Registry) (*resultcache.Cache, error) {
	if dir == "" {
		return nil, nil
	}
	c, err := resultcache.Open(resultcache.Options{Dir: dir, ReadOnly: readonly, Metrics: reg})
	if err != nil {
		return nil, err
	}
	if clear {
		if err := c.Clear(); err != nil {
			return nil, fmt.Errorf("clear cache: %w", err)
		}
	}
	return c, nil
}

// cacheSummary reports cache effectiveness for the run.
func cacheSummary(log *slog.Logger, c *resultcache.Cache) {
	if c == nil {
		return
	}
	st := c.Stats()
	log.Info("cache summary",
		"hits", st.Hits, "misses", st.Misses,
		"hit_rate", fmt.Sprintf("%.0f%%", 100*st.HitRate()),
		"stored", st.Stores)
}

// progressPublisher maps core progress callbacks onto the SSE broker
// feeding /dash — the same DashEvent schema cmd/sweep emits, so one
// dashboard serves both commands.
func progressPublisher(broker *telemetry.Broker, start time.Time) func(core.Progress) {
	var hits atomic.Int64
	return func(p core.Progress) {
		if p.CacheHit {
			hits.Add(1)
		}
		elapsed := time.Since(start).Seconds()
		rate := 0.0
		if elapsed > 0 {
			rate = float64(p.Done) / elapsed
		}
		eta := 0.0
		if rate > 0 {
			eta = float64(p.Total-p.Done) / rate
		}
		_ = broker.Publish(telemetry.DashEvent{
			Kind:         "point",
			Workload:     p.Workload,
			Class:        p.Class.String(),
			Depth:        p.Depth,
			Done:         p.Done,
			Total:        p.Total,
			CacheHit:     p.CacheHit,
			BIPS:         p.Point.Result.BIPS(),
			ETASec:       eta,
			PointsPerSec: rate,
			CacheHits:    int(hits.Load()),
		})
	}
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		fig     = fs.String("fig", "all", "comma-separated experiment ids, or 'all'")
		n       = fs.Int("n", 0, "instructions per simulation run (default 30000)")
		warm    = fs.Int("warmup", 0, "warm-up instructions (default 30000, -1 for none)")
		nwl     = fs.Int("workloads", 0, "cap the workload catalog size (0 = all 55)")
		csvDir  = fs.String("csv", "", "directory to write per-figure CSV data files")
		list    = fs.Bool("list", false, "list experiment ids and exit")
		plot    = fs.Bool("plot", false, "render ASCII charts under each figure")
		summary = fs.String("summary", "", "write JSON sweep summaries of the full catalog to this file and exit")
		md      = fs.String("md", "", "run every experiment and write a Markdown report to this file")
		par     = fs.Int("parallel", 0, "concurrent workload sweeps (default NumCPU)")
		timings = fs.Bool("time", false, "print per-experiment wall time")

		cacheDir   = fs.String("cache-dir", "", "directory for the on-disk result cache (empty = no caching)")
		cacheRO    = fs.Bool("cache-readonly", false, "read cached results but never write new ones")
		cacheClear = fs.Bool("cache-clear", false, "drop all cached results before running")

		metricsOut = fs.String("metrics-out", "", "write a JSONL metrics dump (manifest + per-experiment timing and row counts) to this file")
		pprofAddr  = fs.String("pprof", "", "serve /debug/pprof, /debug/vars, /metrics, /progress and /dash on this address (e.g. localhost:6060)")
		profDir    = fs.String("profile-dir", "", "capture CPU/heap/allocs pprof profiles and a hot-function summary into this directory")
	)
	logOpts := logx.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	log, err := logOpts.Logger(stderr)
	if err != nil {
		fmt.Fprintln(stderr, "experiments:", err)
		return 2
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Fprintf(stdout, "%-9s %s\n", e.ID, e.Title)
		}
		return 0
	}

	// The run shape is vetted by the shared study-spec rules, the same
	// validation depthd applies to submitted studies and sweep applies
	// to its flags — one home for instruction/warmup/catalog bounds.
	shape := spec.Spec{Instructions: *n, Warmup: *warm}
	if *nwl < 0 || *nwl > workload.Count {
		log.Error("workload cap out of range", "workloads", *nwl, "catalog", workload.Count)
		return 2
	}
	if *nwl > 0 {
		shape.Workloads = workload.Names()[:*nwl]
	}
	if err := shape.Validate(spec.DefaultLimits()); err != nil {
		log.Error("invalid run shape", "err", err)
		return 2
	}
	shape = shape.Normalize()

	var reg *telemetry.Registry
	if *metricsOut != "" || *pprofAddr != "" {
		reg = telemetry.NewRegistry()
		reg.PublishExpvar("repro_metrics")
	}
	if *profDir != "" {
		capture, err := profile.Start(*profDir)
		if err != nil {
			log.Error("start profiling", "err", err)
			return 1
		}
		// Deferred so every exit path (summary, markdown, per-figure)
		// still lands the capture; a stop failure is logged, not fatal —
		// the experiment results are already out.
		defer func() {
			sum, err := capture.Stop()
			if err != nil {
				log.Error("stop profiling", "err", err)
				return
			}
			log.Info("wrote profiles", "dir", capture.Dir(), "hot_funcs", len(sum.Top))
		}()
	}
	runStart := time.Now()

	var (
		dbg    *telemetry.DebugServer
		broker *telemetry.Broker
	)
	if *pprofAddr != "" {
		dbg, err = telemetry.ServeDebug(*pprofAddr)
		if err != nil {
			log.Error("debug server failed", "err", err)
			return 1
		}
		defer dbg.Close()
		broker = telemetry.NewBroker(0)
		defer broker.Close()
		dbg.Handle("/metrics", promexp.Handler(reg))
		dbg.Handle("/progress", broker)
		dbg.Handle("/dash", telemetry.DashHandler())
		log.Info("debug server up",
			"pprof", "http://"+dbg.Addr()+"/debug/pprof/",
			"metrics", "http://"+dbg.Addr()+"/metrics",
			"dash", "http://"+dbg.Addr()+"/dash")
	}

	cache, err := openCache(*cacheDir, *cacheRO, *cacheClear, reg)
	if err != nil {
		log.Error("cache open failed", "err", err)
		return 1
	}

	opt := experiments.Options{
		Instructions: shape.Instructions,
		Warmup:       shape.Warmup,
		Workloads:    *nwl,
		Parallelism:  *par,
		Cache:        cache,
		Metrics:      reg,
	}
	if broker != nil {
		opt.Progress = progressPublisher(broker, runStart)
	}

	if *summary != "" {
		if err := writeSummaries(*summary, opt, stdout); err != nil {
			log.Error("summary failed", "err", err)
			return 1
		}
		cacheSummary(log, cache)
		return 0
	}

	if *md != "" {
		results := experiments.RunAll(opt)
		f, err := os.Create(*md)
		if err != nil {
			log.Error("markdown report failed", "err", err)
			return 1
		}
		werr := experiments.WriteMarkdown(f, results)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			log.Error("markdown report failed", "err", werr)
			return 1
		}
		bad := 0
		for _, r := range results {
			if r.Err != nil {
				log.Error("experiment failed", "id", r.Experiment.ID, "err", r.Err)
				bad++
			}
		}
		fmt.Fprintf(stdout, "wrote %d experiment reports to %s (%d failed)\n",
			len(results), *md, bad)
		cacheSummary(log, cache)
		if bad > 0 {
			return 1
		}
		return 0
	}

	var ids []string
	if *fig == "all" {
		ids = experiments.IDs()
	} else {
		ids = strings.Split(*fig, ",")
	}

	exit := 0
	for _, id := range ids {
		id = strings.TrimSpace(id)
		e, ok := experiments.ByID(id)
		if !ok {
			log.Error("unknown experiment (use -list)", "id", id)
			exit = 2
			continue
		}
		start := time.Now()
		rep, err := e.Run(opt)
		if err != nil {
			log.Error("experiment failed", "id", id, "err", err)
			exit = 1
			if reg != nil {
				reg.Counter("experiments.failed").Add(1)
			}
			continue
		}
		if reg != nil {
			reg.Counter("experiments.completed").Add(1)
			reg.Counter("experiments.rows").Add(uint64(len(rep.Rows)))
			reg.Gauge("experiments.seconds." + id).Set(time.Since(start).Seconds())
		}
		render := rep.Render
		if *plot {
			render = rep.RenderWithChart
		}
		if err := render(stdout); err != nil {
			log.Error("render failed", "id", id, "err", err)
			exit = 1
		}
		if *timings {
			fmt.Fprintf(stdout, "(%s took %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		}
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				log.Error("csv dir failed", "err", err)
				exit = 1
				continue
			}
			path := filepath.Join(*csvDir, id+".csv")
			if err := os.WriteFile(path, []byte(rep.CSV()), 0o644); err != nil {
				log.Error("csv write failed", "id", id, "err", err)
				exit = 1
			}
		}
	}

	if *metricsOut != "" {
		man := telemetry.NewManifest("experiments")
		man.SetParam("figures", strings.Join(ids, ","))
		if *n != 0 {
			man.SetParam("instructions", strconv.Itoa(*n))
		}
		man.ConfigHash = telemetry.Fingerprint(ids...)
		man.Finish(runStart)
		f, err := os.Create(*metricsOut)
		if err != nil {
			log.Error("metrics-out failed", "err", err)
			return 1
		}
		werr := reg.WriteJSONL(f, &man)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			log.Error("metrics-out failed", "err", werr)
			return 1
		}
		log.Info("wrote metrics", "path", *metricsOut)
	}
	cacheSummary(log, cache)
	return exit
}
