// Command experiments regenerates the paper's figures and headline
// numbers from this repository's theory and simulator.
//
// Usage:
//
//	experiments -fig all                 # every experiment, full settings
//	experiments -fig fig6,fig7           # selected experiments
//	experiments -fig fig4b -n 10000      # shorter traces
//	experiments -fig all -csv out/       # also dump CSV data files
//	experiments -fig all -cache-dir d    # memoize simulated design points
//	experiments -list                    # list experiment ids
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/resultcache"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// writeSummaries sweeps the catalog and saves JSON digests for reuse.
func writeSummaries(path string, opt experiments.Options, stdout io.Writer) error {
	cfg := core.StudyConfig{
		Instructions: opt.Instructions,
		Warmup:       opt.Warmup,
		Depths:       opt.Depths,
		Parallelism:  opt.Parallelism,
		Cache:        opt.Cache,
	}
	sweeps, err := core.RunCatalog(cfg, workload.All())
	if err != nil {
		return err
	}
	sums, err := core.SummarizeCatalog(sweeps)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := core.WriteSummaries(f, sums); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %d workload summaries to %s\n", len(sums), path)
	return nil
}

// openCache opens the result cache named by the CLI flags; a nil
// cache (empty dir) disables memoization entirely.
func openCache(dir string, readonly, clear bool, reg *telemetry.Registry) (*resultcache.Cache, error) {
	if dir == "" {
		return nil, nil
	}
	c, err := resultcache.Open(resultcache.Options{Dir: dir, ReadOnly: readonly, Metrics: reg})
	if err != nil {
		return nil, err
	}
	if clear {
		if err := c.Clear(); err != nil {
			return nil, fmt.Errorf("clear cache: %w", err)
		}
	}
	return c, nil
}

// cacheSummary reports cache effectiveness for the run.
func cacheSummary(w io.Writer, prog string, c *resultcache.Cache) {
	if c == nil {
		return
	}
	st := c.Stats()
	fmt.Fprintf(w, "%s: cache %d hits / %d misses (%.0f%% hit rate), %d stored\n",
		prog, st.Hits, st.Misses, 100*st.HitRate(), st.Stores)
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		fig     = fs.String("fig", "all", "comma-separated experiment ids, or 'all'")
		n       = fs.Int("n", 0, "instructions per simulation run (default 30000)")
		warm    = fs.Int("warmup", 0, "warm-up instructions (default 30000, -1 for none)")
		nwl     = fs.Int("workloads", 0, "cap the workload catalog size (0 = all 55)")
		csvDir  = fs.String("csv", "", "directory to write per-figure CSV data files")
		list    = fs.Bool("list", false, "list experiment ids and exit")
		plot    = fs.Bool("plot", false, "render ASCII charts under each figure")
		summary = fs.String("summary", "", "write JSON sweep summaries of the full catalog to this file and exit")
		md      = fs.String("md", "", "run every experiment and write a Markdown report to this file")
		par     = fs.Int("parallel", 0, "concurrent workload sweeps (default NumCPU)")
		timings = fs.Bool("time", false, "print per-experiment wall time")

		cacheDir   = fs.String("cache-dir", "", "directory for the on-disk result cache (empty = no caching)")
		cacheRO    = fs.Bool("cache-readonly", false, "read cached results but never write new ones")
		cacheClear = fs.Bool("cache-clear", false, "drop all cached results before running")

		metricsOut = fs.String("metrics-out", "", "write a JSONL metrics dump (manifest + per-experiment timing and row counts) to this file")
		pprofAddr  = fs.String("pprof", "", "serve /debug/pprof and /debug/vars on this address (e.g. localhost:6060)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Fprintf(stdout, "%-9s %s\n", e.ID, e.Title)
		}
		return 0
	}

	if *pprofAddr != "" {
		addr, err := telemetry.ServeDebug(*pprofAddr)
		if err != nil {
			fmt.Fprintln(stderr, "pprof:", err)
			return 1
		}
		fmt.Fprintf(stderr, "experiments: debug server at http://%s/debug/pprof/\n", addr)
	}
	var reg *telemetry.Registry
	if *metricsOut != "" || *pprofAddr != "" {
		reg = telemetry.NewRegistry()
		reg.PublishExpvar("repro_metrics")
	}
	runStart := time.Now()

	cache, err := openCache(*cacheDir, *cacheRO, *cacheClear, reg)
	if err != nil {
		fmt.Fprintln(stderr, "experiments:", err)
		return 1
	}

	opt := experiments.Options{
		Instructions: *n,
		Warmup:       *warm,
		Workloads:    *nwl,
		Parallelism:  *par,
		Cache:        cache,
	}

	if *summary != "" {
		if err := writeSummaries(*summary, opt, stdout); err != nil {
			fmt.Fprintln(stderr, "summary:", err)
			return 1
		}
		cacheSummary(stderr, "experiments", cache)
		return 0
	}

	if *md != "" {
		results := experiments.RunAll(opt)
		f, err := os.Create(*md)
		if err != nil {
			fmt.Fprintln(stderr, "md:", err)
			return 1
		}
		werr := experiments.WriteMarkdown(f, results)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(stderr, "md:", werr)
			return 1
		}
		bad := 0
		for _, r := range results {
			if r.Err != nil {
				fmt.Fprintf(stderr, "%s: %v\n", r.Experiment.ID, r.Err)
				bad++
			}
		}
		fmt.Fprintf(stdout, "wrote %d experiment reports to %s (%d failed)\n",
			len(results), *md, bad)
		cacheSummary(stderr, "experiments", cache)
		if bad > 0 {
			return 1
		}
		return 0
	}

	var ids []string
	if *fig == "all" {
		ids = experiments.IDs()
	} else {
		ids = strings.Split(*fig, ",")
	}

	exit := 0
	for _, id := range ids {
		id = strings.TrimSpace(id)
		e, ok := experiments.ByID(id)
		if !ok {
			fmt.Fprintf(stderr, "unknown experiment %q (use -list)\n", id)
			exit = 2
			continue
		}
		start := time.Now()
		rep, err := e.Run(opt)
		if err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", id, err)
			exit = 1
			if reg != nil {
				reg.Counter("experiments.failed").Add(1)
			}
			continue
		}
		if reg != nil {
			reg.Counter("experiments.completed").Add(1)
			reg.Counter("experiments.rows").Add(uint64(len(rep.Rows)))
			reg.Gauge("experiments.seconds." + id).Set(time.Since(start).Seconds())
		}
		render := rep.Render
		if *plot {
			render = rep.RenderWithChart
		}
		if err := render(stdout); err != nil {
			fmt.Fprintf(stderr, "%s: render: %v\n", id, err)
			exit = 1
		}
		if *timings {
			fmt.Fprintf(stdout, "(%s took %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		}
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintf(stderr, "csv dir: %v\n", err)
				exit = 1
				continue
			}
			path := filepath.Join(*csvDir, id+".csv")
			if err := os.WriteFile(path, []byte(rep.CSV()), 0o644); err != nil {
				fmt.Fprintf(stderr, "%s: write csv: %v\n", id, err)
				exit = 1
			}
		}
	}

	if *metricsOut != "" {
		man := telemetry.NewManifest("experiments")
		man.SetParam("figures", strings.Join(ids, ","))
		if *n != 0 {
			man.SetParam("instructions", strconv.Itoa(*n))
		}
		man.ConfigHash = telemetry.Fingerprint(ids...)
		man.Finish(runStart)
		f, err := os.Create(*metricsOut)
		if err != nil {
			fmt.Fprintln(stderr, "metrics-out:", err)
			return 1
		}
		werr := reg.WriteJSONL(f, &man)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(stderr, "metrics-out:", werr)
			return 1
		}
		fmt.Fprintf(stderr, "experiments: wrote metrics to %s\n", *metricsOut)
	}
	cacheSummary(stderr, "experiments", cache)
	return exit
}
