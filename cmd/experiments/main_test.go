package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args []string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code = run(args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

func TestRunList(t *testing.T) {
	code, stdout, stderr := runCLI(t, []string{"-list"})
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	for _, id := range []string{"fig1", "fig6", "headline", "validate"} {
		if !strings.Contains(stdout, id) {
			t.Fatalf("-list output missing %s:\n%s", id, stdout)
		}
	}
}

func TestRunTheoryFigure(t *testing.T) {
	code, stdout, stderr := runCLI(t, []string{"-fig", "fig3"})
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "== fig3:") {
		t.Fatalf("missing report header:\n%s", stdout)
	}
}

func TestRunUnknownFigureExitsTwo(t *testing.T) {
	code, _, stderr := runCLI(t, []string{"-fig", "fig99"})
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "unknown experiment") {
		t.Fatalf("stderr missing diagnosis:\n%s", stderr)
	}
}

func TestRunBadFlagExitsTwo(t *testing.T) {
	if code, _, _ := runCLI(t, []string{"-definitely-not-a-flag"}); code != 2 {
		t.Fatal("bad flag must exit 2")
	}
}

// TestRunWarmCacheByteIdentical repeats a simulation-backed figure
// against one cache directory: the warm run reuses every design point
// and reproduces the report byte for byte.
func TestRunWarmCacheByteIdentical(t *testing.T) {
	dir := t.TempDir()
	args := []string{
		"-fig", "fig4a",
		"-n", "2000", "-warmup", "-1",
		"-cache-dir", dir,
	}

	code, out1, err1 := runCLI(t, args)
	if code != 0 {
		t.Fatalf("cold run exit %d, stderr:\n%s", code, err1)
	}
	if !strings.Contains(err1, "hits=0 ") {
		t.Fatalf("cold run cache summary unexpected:\n%s", err1)
	}

	code, out2, err2 := runCLI(t, args)
	if code != 0 {
		t.Fatalf("warm run exit %d, stderr:\n%s", code, err2)
	}
	if out1 != out2 {
		t.Fatalf("warm-cache output differs from cold run:\n--- cold ---\n%s\n--- warm ---\n%s", out1, out2)
	}
	if !strings.Contains(err2, "misses=0") || !strings.Contains(err2, "hit_rate=100%") {
		t.Fatalf("warm run cache summary unexpected:\n%s", err2)
	}
}

// TestRunShapeValidation covers the shared study-spec checks on the
// experiments front end: instruction bounds, warmup form and the
// catalog cap all flow through internal/serve/spec.
func TestRunShapeValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"negative workload cap", []string{"-workloads", "-1", "-fig", "theory"}},
		{"workload cap beyond catalog", []string{"-workloads", "99", "-fig", "theory"}},
		{"instructions beyond trace cap", []string{"-n", "6000000", "-fig", "theory"}},
		{"bad warmup", []string{"-warmup", "-7", "-fig", "theory"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errBuf bytes.Buffer
			if code := run(tc.args, &out, &errBuf); code != 2 {
				t.Fatalf("exit = %d, want 2; stderr:\n%s", code, errBuf.String())
			}
		})
	}
}
