// Command benchdiff compares two benchmark-trajectory records (see
// internal/bench) and fails when the candidate regressed beyond a
// noise band: points/sec throughput, the invariant-engine overhead
// measurement, and per-phase p50/p95/p99 latency quantiles. CI runs it
// after each smoke sweep to turn "did this PR make sweeps slower?"
// into an exit code.
//
// Usage:
//
//	benchdiff -baseline BENCH_sweep.json [-candidate new.json] [-noise 0.20]
//
// With only -baseline, the file's last record is compared against its
// second-to-last — the common CI shape, where the smoke run has just
// appended one record to the committed trajectory. With -candidate,
// the candidate file's last record is compared against the baseline
// file's last. Exit status: 0 comparison passed (or nothing to
// compare), 1 regression detected, 2 usage error.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"repro/internal/bench"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baseline := fs.String("baseline", "", "baseline trajectory file (required)")
	candidate := fs.String("candidate", "", "candidate trajectory file (default: last-vs-previous within -baseline)")
	noise := fs.Float64("noise", 0.20, "relative noise band; regressions within it pass")
	minPhaseUS := fs.Float64("min-phase-us", 100, "ignore phase quantiles below this many µs (clock noise)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *baseline == "" || fs.NArg() > 0 || *noise < 0 {
		fmt.Fprintln(stderr, "benchdiff: -baseline is required and takes no positional arguments")
		fs.Usage()
		return 2
	}

	base, err := bench.Load(*baseline)
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}
	var old, new_ *bench.Record
	var oldName, newName string
	if *candidate == "" || *candidate == *baseline {
		// Self-comparison mode: newest record against the one before it.
		if len(base) < 2 {
			fmt.Fprintf(stdout, "benchdiff: %s has %d record(s); nothing to compare yet — pass\n",
				*baseline, len(base))
			return 0
		}
		old, new_ = &base[len(base)-2], &base[len(base)-1]
		oldName = fmt.Sprintf("%s[%d]", *baseline, len(base)-2)
		newName = fmt.Sprintf("%s[%d]", *baseline, len(base)-1)
	} else {
		cand, err := bench.Load(*candidate)
		if err != nil {
			fmt.Fprintf(stderr, "benchdiff: %v\n", err)
			return 2
		}
		if len(base) == 0 {
			fmt.Fprintf(stdout, "benchdiff: baseline %s is empty or missing; nothing to compare — pass\n", *baseline)
			return 0
		}
		if len(cand) == 0 {
			fmt.Fprintf(stdout, "benchdiff: candidate %s is empty or missing; nothing to compare — pass\n", *candidate)
			return 0
		}
		old, new_ = &base[len(base)-1], &cand[len(cand)-1]
		oldName, newName = *baseline, *candidate
	}

	fmt.Fprintf(stdout, "benchdiff: %s (%s) vs %s (%s), noise band ±%.0f%%\n",
		oldName, old.StartedAt, newName, new_.StartedAt, *noise*100)
	regressions := compare(old, new_, *noise, *minPhaseUS, stdout)
	if regressions > 0 {
		fmt.Fprintf(stdout, "benchdiff: FAIL — %d regression(s) beyond the noise band\n", regressions)
		return 1
	}
	fmt.Fprintln(stdout, "benchdiff: PASS")
	return 0
}

// compare prints one line per comparable metric and returns how many
// regressed beyond the noise band. Metrics absent from either record
// (zero-valued) are skipped: trajectories mix sweep and conformance
// records, which populate different fields.
func compare(old, new_ *bench.Record, noise, minPhaseUS float64, w io.Writer) int {
	regressions := 0
	higher := func(name string, o, n float64) {
		regressions += report(w, name, o, n, noise, true)
	}
	lower := func(name string, o, n float64) {
		regressions += report(w, name, o, n, noise, false)
	}

	if old.PointsPerSec > 0 && new_.PointsPerSec > 0 {
		higher("points_per_sec", old.PointsPerSec, new_.PointsPerSec)
	}
	// Server (depthd-load) records measure HTTP throughput alongside
	// design-point throughput.
	if old.RequestsPerSec > 0 && new_.RequestsPerSec > 0 {
		higher("requests_per_sec", old.RequestsPerSec, new_.RequestsPerSec)
	}
	if old.PointsPerSecOff > 0 && new_.PointsPerSecOff > 0 {
		higher("points_per_sec_invariants_off", old.PointsPerSecOff, new_.PointsPerSecOff)
	}
	if old.PointsPerSecOn > 0 && new_.PointsPerSecOn > 0 {
		higher("points_per_sec_invariants_on", old.PointsPerSecOn, new_.PointsPerSecOn)
	}
	if old.PointsPerSecPerCycle > 0 && new_.PointsPerSecPerCycle > 0 {
		higher("points_per_sec_per_cycle", old.PointsPerSecPerCycle, new_.PointsPerSecPerCycle)
	}
	// The skip-ahead engine must stay at or above the per-cycle
	// reference it replaces. This gate is within the candidate record
	// alone — both engines were timed in the same run, on the same
	// machine, so the comparison needs no baseline and any drop beyond
	// the noise band means the optimized engine regressed below the
	// baseline stepping.
	if new_.PointsPerSecPerCycle > 0 && new_.PointsPerSecOff > 0 {
		rel := new_.PointsPerSecOff/new_.PointsPerSecPerCycle - 1
		status := "ok"
		if rel < -noise {
			status = "REGRESSION"
			regressions++
		}
		fmt.Fprintf(w, "  %-34s %10.2f vs %10.2f  (%+6.1f%%)  %s\n",
			"engine_vs_per_cycle", new_.PointsPerSecOff, new_.PointsPerSecPerCycle, rel*100, status)
	}
	// Overhead is a fraction near zero, so compare on an absolute band:
	// growing from 1% to 1.1% is noise, growing past the band is not.
	if old.PointsPerSecOn > 0 && new_.PointsPerSecOn > 0 {
		delta := new_.InvariantOverhead - old.InvariantOverhead
		status := "ok"
		if delta > noise {
			status = "REGRESSION"
			regressions++
		}
		fmt.Fprintf(w, "  %-34s %10.4f -> %10.4f  (%+.4f abs)  %s\n",
			"invariant_overhead_frac", old.InvariantOverhead, new_.InvariantOverhead, delta, status)
	}

	// Ledger shedding is a fraction near zero, so like the invariant
	// overhead it compares on an absolute band: a load test that starts
	// dropping a meaningful share of its canonical events regressed,
	// whatever the baseline was.
	if old.LedgerEvents > 0 && new_.LedgerEvents > 0 {
		delta := new_.LedgerDropFrac - old.LedgerDropFrac
		status := "ok"
		if delta > noise {
			status = "REGRESSION"
			regressions++
		}
		fmt.Fprintf(w, "  %-34s %10.4f -> %10.4f  (%+.4f abs)  %s\n",
			"ledger_drop_frac", old.LedgerDropFrac, new_.LedgerDropFrac, delta, status)
	}
	// Alloc-guard records carry deterministic near-zero allocation
	// counts, so like the other near-zero fractions they compare on an
	// absolute band: any steady-state allocation creeping into the
	// per-cycle or per-evaluation path regressed, whatever the noise
	// setting. Gated on both records being allocguard runs so mixed
	// trajectories skip it.
	if old.Tool == "allocguard" && new_.Tool == "allocguard" {
		for _, m := range [4]struct {
			name string
			o, n float64
		}{
			{"allocs_per_cycle", old.AllocsPerCycle, new_.AllocsPerCycle},
			{"allocs_per_cycle_fast", old.AllocsPerCycleFast, new_.AllocsPerCycleFast},
			{"allocs_per_eval", old.AllocsPerEval, new_.AllocsPerEval},
			{"allocs_per_packed_record", old.AllocsPerPackedRecord, new_.AllocsPerPackedRecord},
		} {
			delta := m.n - m.o
			status := "ok"
			if delta > noise {
				status = "REGRESSION"
				regressions++
			}
			fmt.Fprintf(w, "  %-34s %10.4f -> %10.4f  (%+.4f abs)  %s\n",
				m.name, m.o, m.n, delta, status)
		}
	}
	// Burn rate only regresses when it grows beyond the noise band AND
	// the run actually ends over budget (burn > 1): drifting from 0.1
	// to 0.3 is headroom, not an alert.
	if old.MaxBurnRate > 0 && new_.MaxBurnRate > 0 {
		rel := new_.MaxBurnRate/old.MaxBurnRate - 1
		status := "ok"
		if rel > noise && new_.MaxBurnRate > 1 {
			status = "REGRESSION"
			regressions++
		}
		fmt.Fprintf(w, "  %-34s %10.4f -> %10.4f  (%+6.1f%%)  %s\n",
			"max_burn_rate", old.MaxBurnRate, new_.MaxBurnRate, rel*100, status)
	}

	// Phase quantiles, lower-better, for phases both records measured.
	names := make([]string, 0, len(old.Phases))
	for name := range old.Phases {
		if _, ok := new_.Phases[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		op, np := old.Phases[name], new_.Phases[name]
		if op.Count == 0 || np.Count == 0 {
			continue
		}
		for _, q := range []struct {
			label string
			o, n  float64
		}{
			{"p50_us", op.P50US, np.P50US},
			{"p95_us", op.P95US, np.P95US},
			{"p99_us", op.P99US, np.P99US},
		} {
			// Sub-floor durations are dominated by clock resolution and
			// scheduler jitter; comparing them yields false alarms.
			if q.o < minPhaseUS && q.n < minPhaseUS {
				continue
			}
			lower("phase."+name+"."+q.label, q.o, q.n)
		}
	}
	return regressions
}

// report prints one comparison line and returns 1 if it regressed.
// higherBetter selects the direction; the change is judged relative to
// the old value.
func report(w io.Writer, name string, old, new_, noise float64, higherBetter bool) int {
	if old <= 0 || math.IsNaN(old) || math.IsNaN(new_) {
		return 0
	}
	rel := new_/old - 1
	bad := rel < -noise
	if !higherBetter {
		bad = rel > noise
	}
	status := "ok"
	ret := 0
	if bad {
		status = "REGRESSION"
		ret = 1
	}
	fmt.Fprintf(w, "  %-34s %10.1f -> %10.1f  (%+6.1f%%)  %s\n", name, old, new_, rel*100, status)
	return ret
}
