package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
)

func writeTrajectory(t *testing.T, name string, recs ...bench.Record) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	for _, rec := range recs {
		if err := bench.Append(path, rec); err != nil {
			t.Fatal(err)
		}
	}
	return path
}

func record(pointsPerSec float64, pointP95 float64) bench.Record {
	rec := bench.NewRecord("test", time.Now())
	rec.Points = 10
	rec.PointsPerSec = pointsPerSec
	rec.Phases = map[string]bench.Phase{
		"point": {Count: 10, MeanUS: pointP95 / 2, P50US: pointP95 / 2, P95US: pointP95, P99US: pointP95, MaxUS: pointP95},
	}
	return rec
}

func runDiff(t *testing.T, args ...string) (int, string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(args, &out, &errOut)
	return code, out.String() + errOut.String()
}

func TestIdenticalRecordsPass(t *testing.T) {
	path := writeTrajectory(t, "b.json", record(100, 5000), record(100, 5000))
	code, out := runDiff(t, "-baseline", path)
	if code != 0 {
		t.Fatalf("exit %d, output:\n%s", code, out)
	}
	if !strings.Contains(out, "PASS") {
		t.Fatalf("no PASS in:\n%s", out)
	}
}

func TestThroughputRegressionFails(t *testing.T) {
	// 40% throughput drop, well beyond the 20% default band.
	path := writeTrajectory(t, "b.json", record(100, 5000), record(60, 5000))
	code, out := runDiff(t, "-baseline", path)
	if code != 1 {
		t.Fatalf("exit %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, "points_per_sec") || !strings.Contains(out, "REGRESSION") {
		t.Fatalf("regression not reported:\n%s", out)
	}
}

func TestPhaseQuantileRegressionFails(t *testing.T) {
	path := writeTrajectory(t, "b.json", record(100, 5000), record(100, 9000))
	code, out := runDiff(t, "-baseline", path)
	if code != 1 {
		t.Fatalf("exit %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, "phase.point.p95_us") {
		t.Fatalf("phase regression not reported:\n%s", out)
	}
}

func TestNoiseBandTolerates(t *testing.T) {
	// A 15% drop sits inside the default ±20% band.
	path := writeTrajectory(t, "b.json", record(100, 5000), record(85, 5600))
	if code, out := runDiff(t, "-baseline", path); code != 0 {
		t.Fatalf("exit %d, output:\n%s", code, out)
	}
	// Tightening the band makes the same drop fail.
	if code, _ := runDiff(t, "-baseline", path, "-noise", "0.05"); code != 1 {
		t.Fatal("5% band did not flag a 15% drop")
	}
}

func TestTinyPhasesIgnored(t *testing.T) {
	// 2µs → 80µs is a huge relative change but below the 100µs floor.
	path := writeTrajectory(t, "b.json", record(100, 2), record(100, 80))
	if code, out := runDiff(t, "-baseline", path); code != 0 {
		t.Fatalf("exit %d, output:\n%s", code, out)
	}
}

func TestSingleRecordAndMissingBaselinePass(t *testing.T) {
	single := writeTrajectory(t, "b.json", record(100, 5000))
	code, out := runDiff(t, "-baseline", single)
	if code != 0 || !strings.Contains(out, "nothing to compare") {
		t.Fatalf("single record: exit %d, output:\n%s", code, out)
	}

	missing := filepath.Join(t.TempDir(), "nope.json")
	code, out = runDiff(t, "-baseline", missing)
	if code != 0 || !strings.Contains(out, "nothing to compare") {
		t.Fatalf("missing baseline: exit %d, output:\n%s", code, out)
	}

	// Two-file mode with an empty baseline also passes with a message.
	cand := writeTrajectory(t, "c.json", record(100, 5000))
	code, out = runDiff(t, "-baseline", missing, "-candidate", cand)
	if code != 0 || !strings.Contains(out, "nothing to compare") {
		t.Fatalf("missing baseline vs candidate: exit %d, output:\n%s", code, out)
	}
}

func TestTwoFileMode(t *testing.T) {
	base := writeTrajectory(t, "base.json", record(100, 5000))
	cand := writeTrajectory(t, "cand.json", record(50, 5000))
	code, out := runDiff(t, "-baseline", base, "-candidate", cand)
	if code != 1 || !strings.Contains(out, "REGRESSION") {
		t.Fatalf("exit %d, output:\n%s", code, out)
	}
	// Improvement direction passes.
	if code, _ := runDiff(t, "-baseline", cand, "-candidate", base); code != 0 {
		t.Fatal("improvement flagged as regression")
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _ := runDiff(t); code != 2 {
		t.Fatal("missing -baseline did not exit 2")
	}
	if code, _ := runDiff(t, "-bogus"); code != 2 {
		t.Fatal("unknown flag did not exit 2")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _ := runDiff(t, "-baseline", bad); code != 2 {
		t.Fatal("malformed trajectory did not exit 2")
	}
}

func TestInvariantOverheadAbsoluteBand(t *testing.T) {
	mk := func(off, on, frac float64) bench.Record {
		rec := bench.NewRecord("conformance", time.Now())
		rec.PointsPerSecOff = off
		rec.PointsPerSecOn = on
		rec.InvariantOverhead = frac
		return rec
	}
	// Overhead growing 0.01 → 0.05 is within a 0.20 absolute band.
	path := writeTrajectory(t, "b.json", mk(100, 99, 0.01), mk(100, 95, 0.05))
	if code, out := runDiff(t, "-baseline", path); code != 0 {
		t.Fatalf("small overhead growth flagged:\n%s", out)
	}
	// 0.01 → 0.40 is not.
	path = writeTrajectory(t, "b2.json", mk(100, 99, 0.01), mk(100, 71, 0.40))
	code, out := runDiff(t, "-baseline", path)
	if code != 1 || !strings.Contains(out, "invariant_overhead_frac") {
		t.Fatalf("overhead regression missed: exit %d\n%s", code, out)
	}
}

// serveRecord mimics what the depthd load harness appends to
// BENCH_serve.json: request throughput plus round-trip quantiles, no
// per-point phases.
func serveRecord(reqPerSec, roundTripP95 float64) bench.Record {
	rec := bench.NewRecord("depthd-load", time.Now())
	rec.Points = 384
	rec.PointsPerSec = reqPerSec * 3 // points ride along with requests
	rec.Requests = 112
	rec.RequestsPerSec = reqPerSec
	rec.CacheHits = 384
	rec.CacheHitRate = 0.97
	rec.Phases = map[string]bench.Phase{
		"round_trip": {Count: 32, MeanUS: roundTripP95 / 2, P50US: roundTripP95 / 2, P95US: roundTripP95, P99US: roundTripP95, MaxUS: roundTripP95},
	}
	return rec
}

func TestServeTrajectoryCompares(t *testing.T) {
	path := writeTrajectory(t, "BENCH_serve.json", serveRecord(700, 50000), serveRecord(720, 48000))
	code, out := runDiff(t, "-baseline", path)
	if code != 0 {
		t.Fatalf("exit %d, output:\n%s", code, out)
	}
	for _, want := range []string{"requests_per_sec", "phase.round_trip.p95_us", "PASS"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// obsRecord is a serve record carrying the observability figures.
func obsRecord(written, dropped uint64, maxBurn float64) bench.Record {
	rec := serveRecord(700, 50000)
	rec.SetLedger(written, dropped)
	rec.MaxBurnRate = maxBurn
	return rec
}

func TestLedgerDropFracAbsoluteBand(t *testing.T) {
	// A few drops inside the 0.20 absolute band pass.
	path := writeTrajectory(t, "b.json", obsRecord(1000, 0, 0.1), obsRecord(950, 50, 0.1))
	if code, out := runDiff(t, "-baseline", path); code != 0 {
		t.Fatalf("5%% drop fraction flagged:\n%s", out)
	}
	// Shedding 40% of the canonical events is a regression.
	path = writeTrajectory(t, "b2.json", obsRecord(1000, 0, 0.1), obsRecord(600, 400, 0.1))
	code, out := runDiff(t, "-baseline", path)
	if code != 1 || !strings.Contains(out, "ledger_drop_frac") {
		t.Fatalf("drop-fraction regression missed: exit %d\n%s", code, out)
	}
}

func TestMaxBurnRateGatesOnlyOverBudget(t *testing.T) {
	// Growth that stays under burn 1.0 is headroom, not a regression —
	// even tripling from 0.1 to 0.3.
	path := writeTrajectory(t, "b.json", obsRecord(1000, 0, 0.1), obsRecord(1000, 0, 0.3))
	if code, out := runDiff(t, "-baseline", path); code != 0 {
		t.Fatalf("under-budget burn growth flagged:\n%s", out)
	}
	// Growing past 1.0 (over budget) beyond the noise band fails.
	path = writeTrajectory(t, "b2.json", obsRecord(1000, 0, 0.8), obsRecord(1000, 0, 2.5))
	code, out := runDiff(t, "-baseline", path)
	if code != 1 || !strings.Contains(out, "max_burn_rate") {
		t.Fatalf("over-budget burn regression missed: exit %d\n%s", code, out)
	}
	// A high-but-stable burn (within noise) does not flip the gate.
	path = writeTrajectory(t, "b3.json", obsRecord(1000, 0, 2.0), obsRecord(1000, 0, 2.1))
	if code, out := runDiff(t, "-baseline", path); code != 0 {
		t.Fatalf("stable burn flagged:\n%s", out)
	}
}

func allocRecord(perCycle, perEval float64) bench.Record {
	rec := bench.NewRecord("allocguard", time.Now())
	rec.Points = 1
	rec.AllocsPerCycle = perCycle
	rec.AllocsPerEval = perEval
	return rec
}

// TestAllocGuardAbsoluteBand pins the allocguard gate: a steady-state
// allocation creeping into the per-cycle loop flips benchdiff to a
// failure even from a zero baseline (where a relative band would
// divide by zero), and the zero-to-zero trajectory passes.
func TestAllocGuardAbsoluteBand(t *testing.T) {
	clean := writeTrajectory(t, "b.json", allocRecord(0, 0), allocRecord(0, 0))
	code, out := runDiff(t, "-baseline", clean)
	if code != 0 {
		t.Fatalf("zero-to-zero exit %d, output:\n%s", code, out)
	}
	if !strings.Contains(out, "allocs_per_cycle") {
		t.Fatalf("allocs_per_cycle not compared:\n%s", out)
	}

	dirty := writeTrajectory(t, "b2.json", allocRecord(0, 0), allocRecord(1, 0))
	code, out = runDiff(t, "-baseline", dirty)
	if code != 1 {
		t.Fatalf("planted per-cycle allocation: exit %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, "allocs_per_cycle") || !strings.Contains(out, "REGRESSION") {
		t.Fatalf("regression not reported:\n%s", out)
	}

	evalDirty := writeTrajectory(t, "b3.json", allocRecord(0, 0), allocRecord(0, 2))
	if code, out = runDiff(t, "-baseline", evalDirty); code != 1 {
		t.Fatalf("planted per-eval allocation: exit %d, want 1; output:\n%s", code, out)
	}

	// Mixed trajectories (sweep record then allocguard record) skip the
	// alloc gate rather than comparing unrelated tools' zero fields.
	mixed := writeTrajectory(t, "b4.json", record(100, 5000), allocRecord(1, 1))
	if code, out = runDiff(t, "-baseline", mixed); code != 0 {
		t.Fatalf("mixed trajectory exit %d, output:\n%s", code, out)
	}
}

func TestServeRequestThroughputRegressionFails(t *testing.T) {
	// 40% request-throughput drop with stable latency: the serve-only
	// axis must gate on its own.
	path := writeTrajectory(t, "BENCH_serve.json", serveRecord(700, 50000), serveRecord(420, 50000))
	code, out := runDiff(t, "-baseline", path)
	if code != 1 {
		t.Fatalf("exit %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, "requests_per_sec") || !strings.Contains(out, "REGRESSION") {
		t.Fatalf("serve regression not reported:\n%s", out)
	}
}
