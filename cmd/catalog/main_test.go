package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args []string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code = run(args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

func TestListAllWorkloads(t *testing.T) {
	code, stdout, stderr := runCLI(t, []string{"-n", "2000"})
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	for _, frag := range []string{"workload", "si95-gcc", "oltp-bank"} {
		if !strings.Contains(stdout, frag) {
			t.Errorf("listing missing %q:\n%s", frag, stdout)
		}
	}
}

func TestDetailView(t *testing.T) {
	code, stdout, stderr := runCLI(t, []string{"-workload", "si95-gcc", "-n", "2000"})
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	for _, frag := range []string{"workload si95-gcc", "profile:", "realized over 2000"} {
		if !strings.Contains(stdout, frag) {
			t.Errorf("detail missing %q:\n%s", frag, stdout)
		}
	}
}

func TestUnknownWorkloadExitsTwo(t *testing.T) {
	if code, _, _ := runCLI(t, []string{"-workload", "no-such"}); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestBadFlagExitsTwo(t *testing.T) {
	if code, _, _ := runCLI(t, []string{"-no-such-flag"}); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestExportWithoutWorkloadExitsTwo(t *testing.T) {
	path := filepath.Join(t.TempDir(), "prof.json")
	if code, _, _ := runCLI(t, []string{"-export", path}); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestExportWritesProfileJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "prof.json")
	code, stdout, stderr := runCLI(t, []string{"-workload", "si95-gcc", "-export", path})
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "exported si95-gcc") {
		t.Errorf("missing confirmation:\n%s", stdout)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var prof struct {
		Name string `json:"name"`
	}
	if err := json.Unmarshal(raw, &prof); err != nil {
		t.Fatalf("export is not JSON: %v", err)
	}
	if prof.Name != "si95-gcc" {
		t.Fatalf("exported name = %q, want si95-gcc", prof.Name)
	}
}
