// Command catalog inspects the 55-workload catalog: the behavioural
// parameters of every workload, the realized statistics of its
// generated trace, and a detailed view of a single workload — the
// reproduction's answer to the paper's statement that its traces
// "were carefully selected to accurately reflect the instruction mix,
// module mix and branch prediction characteristics" of each
// application.
//
// Usage:
//
//	catalog                       # one line per workload
//	catalog -workload oltp-bank   # full detail for one workload
//	catalog -n 50000              # deeper statistics
//
// Exit codes: 0 success, 1 failure, 2 usage errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"

	"repro/internal/branch"
	"repro/internal/isa"
	"repro/internal/logx"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("catalog", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		name   = fs.String("workload", "", "show one workload in detail")
		n      = fs.Int("n", 20000, "instructions to generate for statistics")
		export = fs.String("export", "", "export the named -workload as a JSON profile to this file")
	)
	logOpts := logx.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	log, err := logOpts.Logger(stderr)
	if err != nil {
		fmt.Fprintln(stderr, "catalog:", err)
		return 2
	}

	if *export != "" {
		prof, ok := workload.ByName(*name)
		if !ok {
			log.Error("-export needs a valid -workload", "workload", *name)
			return 2
		}
		f, err := os.Create(*export)
		if err != nil {
			log.Error("catalog failed", "err", err)
			return 1
		}
		werr := workload.WriteProfile(f, prof)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			log.Error("catalog failed", "err", werr)
			return 1
		}
		fmt.Fprintf(stdout, "exported %s to %s\n", prof.Name, *export)
		return 0
	}

	if *name != "" {
		prof, ok := workload.ByName(*name)
		if !ok {
			log.Error("unknown workload", "workload", *name)
			return 2
		}
		return detail(stdout, log, prof, *n)
	}

	fmt.Fprintf(stdout, "%-16s %-8s %5s %5s %5s %5s %5s %5s  %6s %6s %7s\n",
		"workload", "class", "RR%", "RX%", "LD%", "ST%", "BR%", "FP%",
		"taken%", "misp%", "lines")
	for _, prof := range workload.All() {
		st, misp, err := stats(prof, *n)
		if err != nil {
			log.Error("catalog failed", "workload", prof.Name, "err", err)
			return 1
		}
		fmt.Fprintf(stdout, "%-16s %-8s %5.1f %5.1f %5.1f %5.1f %5.1f %5.1f  %6.1f %6.1f %7d\n",
			prof.Name, prof.Class,
			100*st.Fraction(isa.RR), 100*st.Fraction(isa.RX),
			100*st.Fraction(isa.Load), 100*st.Fraction(isa.Store),
			100*st.Fraction(isa.Branch), 100*st.Fraction(isa.FP),
			100*st.TakenRate(), 100*misp, st.UniqueAddr)
	}
	return 0
}

// stats generates the workload's trace and measures its mix plus the
// tournament predictor's mispredict rate on it.
func stats(prof workload.Profile, n int) (trace.Stats, float64, error) {
	gen, err := workload.NewGenerator(prof)
	if err != nil {
		return trace.Stats{}, 0, err
	}
	ins := trace.Collect(trace.NewLimitStream(gen, n), 0)
	st := trace.Gather(ins)
	p := branch.NewTournament(12)
	miss, branches := 0, 0
	for i := range ins {
		if ins[i].Class != isa.Branch {
			continue
		}
		branches++
		if p.Predict(ins[i].PC) != ins[i].Taken {
			miss++
		}
		p.Update(ins[i].PC, ins[i].Taken)
	}
	rate := 0.0
	if branches > 0 {
		rate = float64(miss) / float64(branches)
	}
	return st, rate, nil
}

func detail(w io.Writer, log *slog.Logger, prof workload.Profile, n int) int {
	fmt.Fprintf(w, "workload %s (%s), seed %#x\n\n", prof.Name, prof.Class, prof.Seed)
	fmt.Fprintln(w, "profile:")
	fmt.Fprintf(w, "  mix:            RR %.1f%%  RX %.1f%%  load %.1f%%  store %.1f%%  branch %.1f%%  FP %.1f%%\n",
		100*prof.Mix[isa.RR], 100*prof.Mix[isa.RX], 100*prof.Mix[isa.Load],
		100*prof.Mix[isa.Store], 100*prof.Mix[isa.Branch], 100*prof.Mix[isa.FP])
	fmt.Fprintf(w, "  branches:       %d sites (loop %.0f%%, biased %.0f%% @ p=%.2f, random %.0f%%), loop length ≈ %d\n",
		prof.BranchSites, 100*prof.LoopFrac, 100*prof.BiasedFrac, prof.BiasP,
		100*prof.RandomFrac(), prof.AvgLoopLen)
	fmt.Fprintf(w, "  memory:         %d-line working set; hot %.0f%% of accesses in %d lines; seq %.0f%%; random %.0f%%; stride %dB\n",
		prof.WorkingSetLines, 100*prof.HotFrac, prof.HotLines,
		100*prof.SeqFrac, 100*prof.RandFrac, prof.StrideBytes)
	fmt.Fprintf(w, "  dependencies:   DepP %.2f, distance p %.2f, load-consumer hoist %.2f\n",
		prof.DepP, prof.DepGeoP, prof.LoadHoistP)
	if prof.Mix[isa.FP] > 0 {
		fmt.Fprintf(w, "  FP latency:     %d–%d cycles (unpipelined)\n", prof.FPLatMin, prof.FPLatMax)
	}

	st, misp, err := stats(prof, n)
	if err != nil {
		log.Error("catalog failed", "workload", prof.Name, "err", err)
		return 1
	}
	fmt.Fprintf(w, "\nrealized over %d instructions:\n", n)
	fmt.Fprintf(w, "  %s\n", st)
	fmt.Fprintf(w, "  tournament mispredict rate: %.1f%%\n", 100*misp)
	return 0
}
