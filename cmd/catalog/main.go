// Command catalog inspects the 55-workload catalog: the behavioural
// parameters of every workload, the realized statistics of its
// generated trace, and a detailed view of a single workload — the
// reproduction's answer to the paper's statement that its traces
// "were carefully selected to accurately reflect the instruction mix,
// module mix and branch prediction characteristics" of each
// application.
//
// Usage:
//
//	catalog                       # one line per workload
//	catalog -workload oltp-bank   # full detail for one workload
//	catalog -n 50000              # deeper statistics
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	"repro/internal/branch"
	"repro/internal/isa"
	"repro/internal/logx"
	"repro/internal/trace"
	"repro/internal/workload"
)

// log is the process logger, replaced once -log-level/-log-format are
// parsed.
var log = slog.Default()

func main() {
	var (
		name   = flag.String("workload", "", "show one workload in detail")
		n      = flag.Int("n", 20000, "instructions to generate for statistics")
		export = flag.String("export", "", "export the named -workload as a JSON profile to this file")
	)
	logOpts := logx.RegisterFlags(flag.CommandLine)
	flag.Parse()
	logger, err := logOpts.Logger(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "catalog:", err)
		os.Exit(2)
	}
	log = logger

	if *export != "" {
		prof, ok := workload.ByName(*name)
		if !ok {
			log.Error("-export needs a valid -workload", "workload", *name)
			os.Exit(1)
		}
		f, err := os.Create(*export)
		if err != nil {
			log.Error("catalog failed", "err", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := workload.WriteProfile(f, prof); err != nil {
			log.Error("catalog failed", "err", err)
			os.Exit(1)
		}
		fmt.Printf("exported %s to %s\n", prof.Name, *export)
		return
	}

	if *name != "" {
		prof, ok := workload.ByName(*name)
		if !ok {
			log.Error("unknown workload", "workload", *name)
			os.Exit(1)
		}
		detail(prof, *n)
		return
	}

	fmt.Printf("%-16s %-8s %5s %5s %5s %5s %5s %5s  %6s %6s %7s\n",
		"workload", "class", "RR%", "RX%", "LD%", "ST%", "BR%", "FP%",
		"taken%", "misp%", "lines")
	for _, prof := range workload.All() {
		st, misp := stats(prof, *n)
		fmt.Printf("%-16s %-8s %5.1f %5.1f %5.1f %5.1f %5.1f %5.1f  %6.1f %6.1f %7d\n",
			prof.Name, prof.Class,
			100*st.Fraction(isa.RR), 100*st.Fraction(isa.RX),
			100*st.Fraction(isa.Load), 100*st.Fraction(isa.Store),
			100*st.Fraction(isa.Branch), 100*st.Fraction(isa.FP),
			100*st.TakenRate(), 100*misp, st.UniqueAddr)
	}
}

// stats generates the workload's trace and measures its mix plus the
// tournament predictor's mispredict rate on it.
func stats(prof workload.Profile, n int) (trace.Stats, float64) {
	gen, err := workload.NewGenerator(prof)
	if err != nil {
		log.Error("catalog failed", "err", err)
		os.Exit(1)
	}
	ins := trace.Collect(trace.NewLimitStream(gen, n), 0)
	st := trace.Gather(ins)
	p := branch.NewTournament(12)
	miss, branches := 0, 0
	for i := range ins {
		if ins[i].Class != isa.Branch {
			continue
		}
		branches++
		if p.Predict(ins[i].PC) != ins[i].Taken {
			miss++
		}
		p.Update(ins[i].PC, ins[i].Taken)
	}
	rate := 0.0
	if branches > 0 {
		rate = float64(miss) / float64(branches)
	}
	return st, rate
}

func detail(prof workload.Profile, n int) {
	fmt.Printf("workload %s (%s), seed %#x\n\n", prof.Name, prof.Class, prof.Seed)
	fmt.Println("profile:")
	fmt.Printf("  mix:            RR %.1f%%  RX %.1f%%  load %.1f%%  store %.1f%%  branch %.1f%%  FP %.1f%%\n",
		100*prof.Mix[isa.RR], 100*prof.Mix[isa.RX], 100*prof.Mix[isa.Load],
		100*prof.Mix[isa.Store], 100*prof.Mix[isa.Branch], 100*prof.Mix[isa.FP])
	fmt.Printf("  branches:       %d sites (loop %.0f%%, biased %.0f%% @ p=%.2f, random %.0f%%), loop length ≈ %d\n",
		prof.BranchSites, 100*prof.LoopFrac, 100*prof.BiasedFrac, prof.BiasP,
		100*prof.RandomFrac(), prof.AvgLoopLen)
	fmt.Printf("  memory:         %d-line working set; hot %.0f%% of accesses in %d lines; seq %.0f%%; random %.0f%%; stride %dB\n",
		prof.WorkingSetLines, 100*prof.HotFrac, prof.HotLines,
		100*prof.SeqFrac, 100*prof.RandFrac, prof.StrideBytes)
	fmt.Printf("  dependencies:   DepP %.2f, distance p %.2f, load-consumer hoist %.2f\n",
		prof.DepP, prof.DepGeoP, prof.LoadHoistP)
	if prof.Mix[isa.FP] > 0 {
		fmt.Printf("  FP latency:     %d–%d cycles (unpipelined)\n", prof.FPLatMin, prof.FPLatMax)
	}

	st, misp := stats(prof, n)
	fmt.Printf("\nrealized over %d instructions:\n", n)
	fmt.Printf("  %s\n", st)
	fmt.Printf("  tournament mispredict rate: %.1f%%\n", 100*misp)
}
