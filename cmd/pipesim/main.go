// Command pipesim runs one workload on the cycle-accurate simulator at
// one pipeline depth and prints detailed statistics: timing, hazard
// accounting, extracted theory parameters, and the power breakdown.
//
// Usage:
//
//	pipesim -workload si95-gcc -depth 10
//	pipesim -workload oltp-bank -depth 20 -n 50000 -predictor gshare
//	pipesim -tape trace.bin -depth 12        # binary trace tape input
//	pipesim -workloads                       # list catalog workloads
//
// Observability:
//
//	pipesim -trace out.json                  # Chrome trace_event file
//	                                         # (chrome://tracing, perfetto)
//	pipesim -trace-jsonl events.jsonl        # event trace as JSON Lines
//	pipesim -metrics-out metrics.jsonl       # counters + run manifest
//	pipesim -pprof localhost:6060            # /debug/pprof, /debug/vars
//	                                         # and Prometheus /metrics
//	pipesim -log-level debug                 # structured diagnostics
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strconv"

	"repro/internal/branch"
	"repro/internal/fit"
	"repro/internal/isa"
	"repro/internal/logx"
	"repro/internal/pipeline"
	"repro/internal/power"
	"repro/internal/telemetry"
	"repro/internal/telemetry/promexp"
	"repro/internal/trace"
	"repro/internal/workload"
)

// log is the process logger, replaced once -log-level/-log-format are
// parsed (the default covers diagnostics before flag parsing).
var log = slog.Default()

func main() {
	var (
		name     = flag.String("workload", "si95-gcc", "catalog workload name")
		tapePath = flag.String("tape", "", "binary trace tape file (overrides -workload)")
		profile  = flag.String("profile", "", "JSON workload profile file (overrides -workload)")
		depth    = flag.Int("depth", 10, "pipeline depth (decode..execute stages)")
		n        = flag.Int("n", 30000, "instructions to simulate")
		warm     = flag.Int("warmup", 30000, "cache/predictor warm-up instructions (generator input only)")
		pred     = flag.String("predictor", "tournament", "branch predictor: static|bimodal|gshare|tournament")
		ooo      = flag.Bool("ooo", false, "out-of-order execution with register renaming")
		machine  = flag.String("machine", "zseries", "machine preset: zseries|zseries-ooo|narrow|wide")
		sample   = flag.Uint64("power-trace", 0, "sample interval in cycles for a power-over-time trace (0 = off)")
		units    = flag.Bool("units", false, "print the per-unit utilization table")
		list     = flag.Bool("workloads", false, "list catalog workloads and exit")

		tracePath   = flag.String("trace", "", "write the cycle-level event trace in Chrome trace_event format to this file")
		traceJSONL  = flag.String("trace-jsonl", "", "write the cycle-level event trace as JSON Lines to this file")
		traceEvents = flag.Int("trace-events", 0, "event-trace ring capacity (0 = default 262144; oldest events are evicted)")
		traceSample = flag.Uint64("trace-sample", 0, "record only every Nth cycle of the event trace (0 or 1 = every cycle)")
		metricsOut  = flag.String("metrics-out", "", "write a JSONL metrics dump (run manifest + counters) to this file")
		pprofAddr   = flag.String("pprof", "", "serve /debug/pprof, /debug/vars and /metrics on this address (e.g. localhost:6060)")
	)
	logOpts := logx.RegisterFlags(flag.CommandLine)
	flag.Parse()
	logger, err := logOpts.Logger(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pipesim:", err)
		os.Exit(2)
	}
	log = logger

	if *list {
		for _, p := range workload.All() {
			fmt.Printf("%-16s %s\n", p.Name, p.Class)
		}
		return
	}

	var reg *telemetry.Registry
	if *metricsOut != "" || *pprofAddr != "" {
		reg = telemetry.NewRegistry()
		reg.PublishExpvar("repro_metrics")
	}
	if *pprofAddr != "" {
		dbg, err := telemetry.ServeDebug(*pprofAddr)
		if err != nil {
			fatal(err)
		}
		defer dbg.Close()
		dbg.Handle("/metrics", promexp.Handler(reg))
		log.Info("debug server up",
			"pprof", "http://"+dbg.Addr()+"/debug/pprof/",
			"metrics", "http://"+dbg.Addr()+"/metrics")
	}

	cfg, err := pipeline.PresetConfig(pipeline.Preset(*machine), *depth)
	if err != nil {
		fatal(err)
	}
	// A non-default -predictor overrides the preset's choice (the
	// default "tournament" leaves preset-specific predictors intact).
	if *pred != "tournament" {
		p, err := branch.New(branch.Kind(*pred), 12)
		if err != nil {
			fatal(err)
		}
		cfg.Predictor = p
	}
	if *ooo {
		cfg.OutOfOrder = true
	}
	cfg.SampleInterval = *sample

	var tracer *telemetry.Tracer
	if *tracePath != "" || *traceJSONL != "" {
		tracer = pipeline.NewTracer(*traceEvents)
		tracer.SetSampling(*traceSample)
		cfg.Tracer = tracer
	}
	cfg.Metrics = reg

	var src trace.Stream
	wlName, wlSeed := "", uint64(0)
	switch {
	case *tapePath != "":
		f, err := os.Open(*tapePath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		src = trace.NewLimitStream(trace.NewReader(f), *n)
		wlName = "tape:" + *tapePath
	default:
		var prof workload.Profile
		if *profile != "" {
			f, err := os.Open(*profile)
			if err != nil {
				fatal(err)
			}
			prof, err = workload.ReadProfile(f)
			f.Close()
			if err != nil {
				fatal(err)
			}
		} else {
			var ok bool
			prof, ok = workload.ByName(*name)
			if !ok {
				fatal(fmt.Errorf("unknown workload %q (use -workloads)", *name))
			}
		}
		wlName, wlSeed = prof.Name, prof.Seed
		gen, err := workload.NewGenerator(prof)
		if err != nil {
			fatal(err)
		}
		// Warm the hierarchy, predictor and BTB with the leading
		// instructions, then measure the steady-state portion.
		for i := 0; i < *warm; i++ {
			in, _ := gen.Next()
			if in.HasMemory() && cfg.Hierarchy != nil {
				cfg.Hierarchy.Access(in.Addr)
			}
			if in.Class == isa.Branch {
				if cfg.Predictor != nil {
					cfg.Predictor.Predict(in.PC)
					cfg.Predictor.Update(in.PC, in.Taken)
				}
				if cfg.BTB != nil && in.Taken {
					cfg.BTB.Lookup(in.PC)
					cfg.BTB.Update(in.PC, in.Target)
				}
			}
		}
		cfg.KeepState = true
		src = trace.NewLimitStream(gen, *n)
	}

	res, err := pipeline.Run(cfg, src)
	if err != nil {
		fatal(err)
	}
	fmt.Print(res)
	if *units {
		fmt.Print(res.UtilizationReport())
	}

	if ex, err := fit.Extract(res); err == nil {
		fmt.Printf("extracted: %s\n", ex)
	}

	pm := power.DefaultModel()
	if *sample > 0 {
		fmt.Printf("\npower trace (gated), interval %d cycles:\n", *sample)
		fmt.Printf("%10s %10s %10s %8s\n", "cycle", "total", "dynamic", "IPC")
		for i, b := range pm.PowerTrace(res, true) {
			sm := res.Samples[i]
			fmt.Printf("%10d %10.4g %10.4g %8.2f\n",
				sm.Cycle, b.Total(), b.Dynamic, float64(sm.Retired)/float64(*sample))
		}
		fmt.Println()
	}
	for _, gated := range []bool{true, false} {
		b := pm.Evaluate(res, gated)
		mode := "non-gated"
		if gated {
			mode = "clock-gated"
		}
		fmt.Printf("power %-11s total=%.4g dynamic=%.4g leakage=%.4g (%.1f%%) latches=%.0f\n",
			mode, b.Total(), b.Dynamic, b.Leakage, 100*b.LeakageFraction(), b.Latches)
		bips := res.BIPS()
		fmt.Printf("  BIPS=%.5f BIPS/W=%.4g BIPS^2/W=%.4g BIPS^3/W=%.4g\n",
			bips, bips/b.Total(), bips*bips/b.Total(), bips*bips*bips/b.Total())
	}

	// The run manifest stamped by pipeline.Run, enriched with what
	// only the CLI knows, travels with every exported artifact.
	man := res.Manifest
	man.Tool = "pipesim"
	man.SetParam("workload", wlName)
	if wlSeed != 0 {
		man.SetParam("seed", fmt.Sprintf("%#x", wlSeed))
	}
	man.SetParam("instructions", strconv.Itoa(*n))
	man.SetParam("warmup", strconv.Itoa(*warm))

	if reg != nil {
		gb, pb := pm.Evaluate(res, true), pm.Evaluate(res, false)
		gb.Publish(reg, "power.gated")
		pb.Publish(reg, "power.plain")
		gb.PublishAttribution(reg, *depth, res.TimeFO4())
		pb.PublishAttribution(reg, *depth, res.TimeFO4())
	}
	if *metricsOut != "" {
		if err := writeTo(*metricsOut, func(f *os.File) error {
			return reg.WriteJSONL(f, &man)
		}); err != nil {
			fatal(err)
		}
		log.Info("wrote metrics", "path", *metricsOut)
	}
	if *tracePath != "" {
		if err := writeTo(*tracePath, func(f *os.File) error {
			return tracer.WriteChromeTrace(f, &man)
		}); err != nil {
			fatal(err)
		}
		log.Info("wrote Chrome trace", "events", tracer.Len(),
			"evicted", tracer.Dropped(), "path", *tracePath)
	}
	if *traceJSONL != "" {
		if err := writeTo(*traceJSONL, func(f *os.File) error {
			return tracer.WriteJSONL(f, &man)
		}); err != nil {
			fatal(err)
		}
		log.Info("wrote JSONL trace", "events", tracer.Len(), "path", *traceJSONL)
	}
}

// writeTo creates path, runs fn on the file, and closes it, reporting
// the first error.
func writeTo(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	log.Error("pipesim failed", "err", err)
	os.Exit(1)
}
