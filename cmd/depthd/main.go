// Command depthd serves pipeline-depth studies over HTTP: sweep as a
// service. Clients POST a study spec (workloads × depths × power model
// × metric exponent) to /v1/studies and get back a job ID; a bounded
// worker pool drains the queue through the core sweep engine, sharing
// one content-addressed result cache, one telemetry registry and one
// span tracer across all jobs — so a repeated study is a cache lookup,
// not a re-simulation.
//
// Usage:
//
//	depthd -addr :8080
//	depthd -addr :8080 -workers 4 -queue-cap 64 -cache-dir ~/.cache/repro
//
// Walkthrough:
//
//	curl -d '{"workloads":["si95-gcc"],"min_depth":4,"max_depth":20}' \
//	    localhost:8080/v1/studies          # → {"id":"j000001-…","state":"queued",…}
//	curl localhost:8080/v1/studies/j000001-…          # status
//	curl -N localhost:8080/v1/studies/j000001-…/events # SSE progress
//	curl localhost:8080/v1/studies/j000001-…/result    # deterministic result
//	curl -X DELETE localhost:8080/v1/studies/j000001-… # cancel
//	curl localhost:8080/metrics                        # Prometheus exposition
//
// With -tsdb the registry is scraped into an in-process history store
// and three more surfaces mount: range queries over any metric
// (GET /v1/query?metric=…&fn=rate|avg|quantile&since=5m), the SLO
// burn-rate verdict (GET /v1/slo) and the operations dashboard
// (GET /dash). With -ledger-dir every terminal request and job appends
// one canonical JSONL line there; -stall-timeout arms the job watchdog
// (first stall dumps goroutines into -dump-dir).
//
// SIGINT/SIGTERM drains gracefully: intake closes (submissions 503,
// readyz 503), queued and running jobs finish within -drain-timeout,
// then the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/logx"
	"repro/internal/resultcache"
	"repro/internal/serve"
	"repro/internal/serve/spec"
	"repro/internal/telemetry"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("depthd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "127.0.0.1:8080", "listen address (host:port; :0 picks a free port)")
		workers  = fs.Int("workers", 2, "concurrent studies (worker pool size)")
		queueCap = fs.Int("queue-cap", 16, "queued-study bound; submissions beyond it get 429")
		parallel = fs.Int("parallel", runtime.NumCPU(), "per-study workload parallelism")
		maxJobs  = fs.Int("max-jobs", 1024, "retained job records before old terminal jobs are evicted")

		cacheDir      = fs.String("cache-dir", "", "result cache directory (empty: in-memory cache only)")
		cacheReadonly = fs.Bool("cache-readonly", false, "reuse cached points but never write")
		cacheClear    = fs.Bool("cache-clear", false, "drop all cached entries on startup")

		maxWorkloads    = fs.Int("max-workloads", 0, "per-study workload cap (0: catalog size)")
		maxDepths       = fs.Int("max-depths", 0, "per-study depth cap (0: full simulable range)")
		maxPoints       = fs.Int("max-points", 0, "per-study design-point cap (0: workloads×depths)")
		maxInstructions = fs.Int("max-instructions", 0, "per-study instruction cap (0: default limit)")
		drainTimeout    = fs.Duration("drain-timeout", 30*time.Second, "graceful-drain budget on shutdown")

		tsdbOn       = fs.Bool("tsdb", false, "scrape metrics into the in-process history store; mounts /v1/query, /v1/slo and /dash")
		tsdbInterval = fs.Duration("tsdb-interval", 0, "history scrape period (0: store default)")
		tsdbRetain   = fs.Int("tsdb-retain", 0, "per-series ring capacity in samples (0: store default)")
		ledgerDir    = fs.String("ledger-dir", "", "append one canonical JSONL event per terminal request/job here (empty: off)")
		stallTimeout = fs.Duration("stall-timeout", 0, "flag a running job stalled after this long without progress (0: watchdog off)")
		dumpDir      = fs.String("dump-dir", "", "directory for the first-stall goroutine dump (empty: no dump)")
	)
	logOpts := logx.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	log, err := logOpts.Logger(stderr)
	if err != nil {
		fmt.Fprintf(stderr, "depthd: %v\n", err)
		return 2
	}

	reg := telemetry.NewRegistry()
	var cache *resultcache.Cache
	if *cacheDir != "" {
		cache, err = resultcache.Open(resultcache.Options{
			Dir: *cacheDir, ReadOnly: *cacheReadonly, Metrics: reg,
		})
		if err != nil {
			fmt.Fprintf(stderr, "depthd: open cache: %v\n", err)
			return 1
		}
		if *cacheClear {
			if err := cache.Clear(); err != nil {
				fmt.Fprintf(stderr, "depthd: clear cache: %v\n", err)
				return 1
			}
		}
	}

	limits := spec.DefaultLimits()
	if *maxWorkloads > 0 {
		limits.MaxWorkloads = *maxWorkloads
	}
	if *maxDepths > 0 {
		limits.MaxDepths = *maxDepths
	}
	if *maxPoints > 0 {
		limits.MaxPoints = *maxPoints
	}
	if *maxInstructions > 0 {
		limits.MaxInstructions = *maxInstructions
	}

	srv, err := serve.New(serve.Options{
		Workers:     *workers,
		QueueCap:    *queueCap,
		Parallelism: *parallel,
		Limits:      limits,
		MaxJobs:     *maxJobs,
		Cache:       cache,
		Registry:    reg,
		Log:         log,

		History:         *tsdbOn,
		HistoryInterval: *tsdbInterval,
		HistoryRetain:   *tsdbRetain,
		LedgerDir:       *ledgerDir,
		StallTimeout:    *stallTimeout,
		DumpDir:         *dumpDir,
	})
	if err != nil {
		fmt.Fprintf(stderr, "depthd: %v\n", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "depthd: listen: %v\n", err)
		srv.Close()
		return 1
	}
	// The resolved address line is machine-readable on purpose: the CI
	// smoke job and the boot test parse it to find a :0-assigned port.
	fmt.Fprintf(stdout, "depthd listening on %s\n", ln.Addr())
	log.Info("depthd up", "addr", ln.Addr().String(),
		"workers", *workers, "queue_cap", *queueCap, "cache_dir", *cacheDir)

	if err := srv.Serve(ctx, ln, *drainTimeout); err != nil {
		fmt.Fprintf(stderr, "depthd: %v\n", err)
		return 1
	}
	log.Info("depthd drained and stopped")
	return 0
}
