package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/ledger"
	"repro/internal/workload"
)

// syncBuf is a goroutine-safe buffer: the boot test reads stdout while
// run is still writing to it.
type syncBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestRunBadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
}

func TestRunHelp(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-h"}, &out, &errb); code != 0 {
		t.Errorf("-h: exit %d, want 0", code)
	}
	if !strings.Contains(errb.String(), "-queue-cap") {
		t.Errorf("usage text missing flags:\n%s", errb.String())
	}
}

func TestRunBadLogLevel(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-log-level", "shout"}, &out, &errb); code != 2 {
		t.Errorf("bad log level: exit %d, want 2", code)
	}
}

func TestRunBadListenAddr(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-addr", "256.0.0.1:bogus"}, &out, &errb); code != 1 {
		t.Errorf("bad addr: exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "listen") {
		t.Errorf("stderr missing listen error:\n%s", errb.String())
	}
}

// bootDepthd starts run() with the given extra flags and returns the
// resolved base URL (parsed from the announced listen line) plus the
// exit-code channel.
func bootDepthd(t *testing.T, ctx context.Context, extra ...string) (string, chan int) {
	t.Helper()
	var stdout syncBuf
	done := make(chan int, 1)
	args := append([]string{
		"-addr", "127.0.0.1:0",
		"-workers", "1",
		"-drain-timeout", "10s",
	}, extra...)
	go func() { done <- run(ctx, args, &stdout, io.Discard) }()

	// The first stdout line announces the resolved address.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("no listen line in stdout: %q", stdout.String())
		}
		if s := stdout.String(); strings.Contains(s, "depthd listening on ") {
			line := s[strings.Index(s, "depthd listening on ")+len("depthd listening on "):]
			return "http://" + strings.TrimSpace(strings.SplitN(line, "\n", 2)[0]), done
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestBootSubmitDrain boots a real depthd on a random port, drives one
// study over HTTP, then shuts it down via context cancellation and
// checks the graceful-drain exit path.
func TestBootSubmitDrain(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	base, done := bootDepthd(t, ctx, "-cache-dir", t.TempDir())
	deadline := time.Now().Add(10 * time.Second)

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	body := `{"workloads":["` + workload.Names()[0] + `"],"depths":[4,8],"instructions":2000,"warmup":-1}`
	resp, err = http.Post(base+"/v1/studies", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}

	for st.State != "done" {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.State)
		}
		time.Sleep(5 * time.Millisecond)
		r, err := http.Get(base + "/v1/studies/" + st.ID)
		if err != nil {
			t.Fatalf("status: %v", err)
		}
		if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
			t.Fatalf("decode status: %v", err)
		}
		r.Body.Close()
	}

	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Errorf("graceful shutdown: exit %d, want 0", code)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("depthd did not exit after context cancel")
	}
}

// TestBootObservabilityFlags boots depthd with the full observability
// flag set, runs a study, and checks the mounted surfaces answer and
// the ledger reaches disk on drain.
func TestBootObservabilityFlags(t *testing.T) {
	ledgerDir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	base, done := bootDepthd(t, ctx,
		"-tsdb", "-tsdb-interval", "10ms", "-tsdb-retain", "2048",
		"-ledger-dir", ledgerDir,
		"-stall-timeout", "30s", "-dump-dir", t.TempDir(),
	)

	body := `{"workloads":["` + workload.Names()[0] + `"],"depths":[4,8],"instructions":2000,"warmup":-1}`
	resp, err := http.Post(base+"/v1/studies", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode: %v", err)
	}
	resp.Body.Close()
	deadline := time.Now().Add(15 * time.Second)
	for st.State != "done" {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.State)
		}
		time.Sleep(5 * time.Millisecond)
		r, err := http.Get(base + "/v1/studies/" + st.ID)
		if err != nil {
			t.Fatalf("status: %v", err)
		}
		if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
			t.Fatalf("decode status: %v", err)
		}
		r.Body.Close()
	}

	// The scraper needs a couple of beats before /v1/query has series.
	for {
		r, err := http.Get(base + "/v1/query?metric=serve.jobs_completed&since=30s")
		if err != nil {
			t.Fatalf("query: %v", err)
		}
		code := r.StatusCode
		r.Body.Close()
		if code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/v1/query stuck at %d", code)
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, path := range []string{"/v1/slo", "/dash"} {
		r, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, r.StatusCode)
		}
	}

	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Errorf("graceful shutdown: exit %d, want 0", code)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("depthd did not exit after context cancel")
	}
	events, err := ledger.Replay(ledgerDir)
	if err != nil {
		t.Fatalf("ledger replay: %v", err)
	}
	if sum := ledger.Summarize(events); sum["job:done"] != 1 {
		t.Errorf("ledger summary %v, want one job:done", sum)
	}
}
