package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/difftest"
)

// fastArgs shrinks the matrix so every CLI test stays quick; the full
// default matrix runs in the CI gate.
func fastArgs(extra ...string) []string {
	args := []string{
		"-workloads", "si95-gcc,oltp-bank",
		"-depths", "4,8,12,18",
		"-n", "3000", "-warmup", "1500",
	}
	return append(args, extra...)
}

func runCLI(t *testing.T, args []string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code = run(args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

func TestCleanRunExitsZero(t *testing.T) {
	code, stdout, stderr := runCLI(t, fastArgs())
	if code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	for _, frag := range []string{"invariants/run", "differential/cache", "differential/parallel",
		"differential/seed", "differential/codec", "theory/residual", "0 failed"} {
		if !strings.Contains(stdout, frag) {
			t.Errorf("summary missing %q:\n%s", frag, stdout)
		}
	}
}

// TestEveryMutationFlipsExitNonzero is the self-test acceptance
// criterion: for every injectable violation class, -mutate must flip
// the gate to a nonzero exit.
func TestEveryMutationFlipsExitNonzero(t *testing.T) {
	for _, mut := range difftest.Mutations() {
		mut := mut
		t.Run(string(mut), func(t *testing.T) {
			t.Parallel()
			code, stdout, stderr := runCLI(t, fastArgs("-mutate", string(mut)))
			if code == 0 {
				t.Fatalf("mutation %q exited 0\nstdout:\n%s\nstderr:\n%s", mut, stdout, stderr)
			}
			if code != 1 {
				t.Fatalf("mutation %q: exit = %d, want 1", mut, code)
			}
			if !strings.Contains(stdout, "FAIL") {
				t.Errorf("summary shows no failing check:\n%s", stdout)
			}
		})
	}
}

func TestBadFlagExitsTwo(t *testing.T) {
	if code, _, _ := runCLI(t, []string{"-definitely-not-a-flag"}); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestUnknownWorkloadExitsTwo(t *testing.T) {
	code, _, stderr := runCLI(t, []string{"-workloads", "no-such-workload"})
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "unknown workload") {
		t.Fatalf("stderr missing diagnosis:\n%s", stderr)
	}
}

func TestBadDepthExitsTwo(t *testing.T) {
	if code, _, _ := runCLI(t, []string{"-depths", "4,banana"}); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestUnknownMutationExitsNonzero(t *testing.T) {
	code, _, stderr := runCLI(t, fastArgs("-mutate", "no-such-class"))
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(stderr, "unknown mutation") {
		t.Fatalf("stderr missing diagnosis:\n%s", stderr)
	}
}

func TestListMutations(t *testing.T) {
	code, stdout, _ := runCLI(t, []string{"-list-mutations"})
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, m := range difftest.Mutations() {
		if !strings.Contains(stdout, string(m)) {
			t.Errorf("missing mutation %q in listing:\n%s", m, stdout)
		}
	}
}

func TestJSONReportOutputs(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "report.json")
	code, stdout, stderr := runCLI(t, fastArgs("-json", "-out", path))
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	var fromStdout, fromFile difftest.Report
	if err := json.Unmarshal([]byte(stdout), &fromStdout); err != nil {
		t.Fatalf("stdout is not a JSON report: %v\n%s", err, stdout)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &fromFile); err != nil {
		t.Fatalf("-out file is not a JSON report: %v", err)
	}
	if !fromStdout.OK || !fromFile.OK {
		t.Fatalf("reports not OK: stdout=%+v file=%+v", fromStdout.OK, fromFile.OK)
	}
	if len(fromStdout.Checks) == 0 || len(fromStdout.Checks) != len(fromFile.Checks) {
		t.Fatalf("check lists differ: %d vs %d", len(fromStdout.Checks), len(fromFile.Checks))
	}
}

func TestBenchRecordAppended(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_conformance.json")
	code, _, stderr := runCLI(t, fastArgs("-bench-out", path))
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rec struct {
		Tool            string  `json:"tool"`
		ChecksPassed    int     `json:"checks_passed"`
		ChecksFailed    int     `json:"checks_failed"`
		PointsPerSecOff float64 `json:"points_per_sec_invariants_off"`
		PointsPerSecOn  float64 `json:"points_per_sec_invariants_on"`
	}
	if err := json.Unmarshal(bytes.TrimSpace(raw), &rec); err != nil {
		t.Fatalf("bench record not JSON: %v\n%s", err, raw)
	}
	if rec.Tool != "conformance" || rec.ChecksPassed == 0 || rec.ChecksFailed != 0 {
		t.Fatalf("unexpected record: %+v", rec)
	}
	if rec.PointsPerSecOff <= 0 || rec.PointsPerSecOn <= 0 {
		t.Fatalf("missing throughput figures: %+v", rec)
	}
}
