// Command conformance executes the repository's conformance matrix:
// the in-sim invariant engine over a catalog of sweeps, the
// differential checks (cache on/off, serial/parallel, codec
// round-trip, seed determinism — all bit-identical, not epsilon) and
// the theory-vs-simulation envelopes (Fig. 4 as an executable
// assertion). It is the CI gate proving the analytic model and the
// cycle-accurate simulator still tell the same story.
//
// Usage:
//
//	conformance                          # full default matrix, exit 0 when clean
//	conformance -workloads si95-gcc,sf-swim -depths 4,8,12,20
//	conformance -out report.json         # machine-readable report
//	conformance -json                    # report on stdout
//	conformance -bench-out BENCH_conformance.json
//	                                     # append throughput + invariant-overhead record
//
// Self-test:
//
//	conformance -list-mutations          # the injectable violation classes
//	conformance -mutate drop-retire      # plant a known bug; MUST exit nonzero
//
// Exit codes: 0 clean, 1 conformance violations (or harness failure),
// 2 usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/difftest"
	"repro/internal/invariant"
	"repro/internal/logx"
	"repro/internal/pipeline"
	"repro/internal/profile"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("conformance", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		workloads = fs.String("workloads", "", "comma-separated catalog workloads (default: each class's representative)")
		depths    = fs.String("depths", "", "comma-separated depth axis (default: sparse 4-24)")
		n         = fs.Int("n", 0, "instructions per run (default: harness fast default)")
		warm      = fs.Int("warmup", 0, "warm-up instructions (-1 for none; default: harness fast default)")
		parallel  = fs.Int("parallel", 0, "parallelism for the wide half of the serial/parallel differential")
		mutate    = fs.String("mutate", "", "inject a known violation class (self-test; run MUST then exit nonzero)")
		listMuts  = fs.Bool("list-mutations", false, "print the injectable violation classes and exit")
		outPath   = fs.String("out", "", "write the JSON report to this file")
		jsonOut   = fs.Bool("json", false, "print the JSON report on stdout instead of the summary table")
		benchOut  = fs.String("bench-out", "", "append a conformance bench record (throughput, invariant-engine overhead) to this JSONL file")
		profDir   = fs.String("profile-dir", "", "capture CPU/heap/allocs pprof profiles and a hot-function summary into this directory")
	)
	logOpts := logx.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	log, err := logOpts.Logger(stderr)
	if err != nil {
		fmt.Fprintln(stderr, "conformance:", err)
		return 2
	}

	if *listMuts {
		for _, m := range difftest.Mutations() {
			fmt.Fprintln(stdout, m)
		}
		return 0
	}

	opts := difftest.Options{
		Instructions: *n,
		Warmup:       *warm,
		Parallelism:  *parallel,
		Metrics:      telemetry.NewRegistry(),
		Mutate:       difftest.Mutation(*mutate),
	}
	if *workloads != "" {
		for _, name := range strings.Split(*workloads, ",") {
			name = strings.TrimSpace(name)
			prof, ok := workload.ByName(name)
			if !ok {
				fmt.Fprintf(stderr, "conformance: unknown workload %q\n", name)
				return 2
			}
			opts.Profiles = append(opts.Profiles, prof)
		}
	}
	if *depths != "" {
		for _, s := range strings.Split(*depths, ",") {
			d, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fmt.Fprintf(stderr, "conformance: bad depth %q: %v\n", s, err)
				return 2
			}
			opts.Depths = append(opts.Depths, d)
		}
	}

	opts = opts.WithDefaults()
	var capture *profile.Capture
	if *profDir != "" {
		if capture, err = profile.Start(*profDir); err != nil {
			log.Error("start profiling", "err", err)
			return 1
		}
	}
	start := time.Now()
	rep, err := difftest.Run(opts)
	if sum, perr := capture.Stop(); perr != nil {
		log.Error("stop profiling", "err", perr)
		return 1
	} else if capture != nil {
		log.Info("wrote profiles", "dir", capture.Dir(), "hot_funcs", len(sum.Top))
	}
	if err != nil {
		log.Error("conformance harness failed", "err", err)
		return 1
	}

	if *jsonOut {
		if err := writeJSON(stdout, rep); err != nil {
			log.Error("encode report", "err", err)
			return 1
		}
	} else {
		printSummary(stdout, rep)
	}
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			log.Error("write report", "err", err)
			return 1
		}
		werr := writeJSON(f, rep)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			log.Error("write report", "path", *outPath, "err", werr)
			return 1
		}
		log.Info("wrote report", "path", *outPath)
	}

	if *benchOut != "" {
		if err := appendBench(*benchOut, opts, rep, start, log.Info); err != nil {
			log.Error("append bench record", "err", err)
			return 1
		}
	}

	if !rep.OK {
		log.Error("conformance FAILED", "failed", rep.Failed, "passed", rep.Passed,
			"violations", len(rep.Violations), "mutate", string(rep.Mutate))
		return 1
	}
	log.Info("conformance clean", "passed", rep.Passed, "wall", time.Since(start).Round(time.Millisecond).String())
	return 0
}

func writeJSON(w io.Writer, rep *difftest.Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// printSummary renders the per-check verdict table.
func printSummary(w io.Writer, rep *difftest.Report) {
	fmt.Fprintf(w, "%-24s %-14s %-6s %s\n", "CHECK", "WORKLOAD", "VERDICT", "DETAIL")
	for _, c := range rep.Checks {
		verdict := "ok"
		if !c.Passed {
			verdict = "FAIL"
		}
		fmt.Fprintf(w, "%-24s %-14s %-6s %s\n", c.Name, c.Workload, verdict, c.Detail)
	}
	if len(rep.Violations) > 0 {
		fmt.Fprintln(w, "\nviolations by rule:")
		for _, rc := range rep.Violations {
			fmt.Fprintf(w, "  %-32s %d\n", rc.Rule, rc.Count)
		}
	}
	fmt.Fprintf(w, "\n%d passed, %d failed\n", rep.Passed, rep.Failed)
}

// appendBench measures the invariant engine's cost on a small sweep —
// design-point throughput with the engine detached (the production
// default: one nil-check branch per cycle) and attached — and appends
// the conformance bench record.
func appendBench(path string, opts difftest.Options, rep *difftest.Report, start time.Time,
	info func(msg string, args ...any)) error {
	profiles := opts.Profiles
	timed := func(rec *invariant.Recorder, engine pipeline.EngineKind) (float64, int, error) {
		cfg := core.StudyConfig{
			Depths:       opts.Depths,
			Instructions: opts.Instructions,
			Warmup:       opts.Warmup,
			Invariants:   rec,
			Engine:       engine,
		}
		t0 := time.Now()
		sweeps, err := core.RunCatalog(cfg, profiles)
		if err != nil {
			return 0, 0, err
		}
		points := 0
		for _, sw := range sweeps {
			points += len(sw.Points)
		}
		return float64(points) / time.Since(t0).Seconds(), points, nil
	}
	offRate, points, err := timed(nil, pipeline.EngineAuto)
	if err != nil {
		return err
	}
	onRate, _, err := timed(invariant.New(nil), pipeline.EngineAuto)
	if err != nil {
		return err
	}
	// The before/after pair for the skip-ahead engine: the same matrix
	// with per-cycle reference stepping forced is the "before".
	perCycleRate, _, err := timed(nil, pipeline.EnginePerCycle)
	if err != nil {
		return err
	}
	seedRate := bench.SeedRate(path, func(r bench.Record) float64 { return r.PointsPerSecOff })

	rec := bench.NewRecord("conformance", start)
	rec.Points = points
	rec.ChecksPassed = rep.Passed
	rec.ChecksFailed = rep.Failed
	for _, rc := range rep.Violations {
		rec.Violations += rc.Count
	}
	rec.PointsPerSecOff = offRate
	rec.PointsPerSecOn = onRate
	rec.PointsPerSecPerCycle = perCycleRate
	if onRate > 0 {
		rec.InvariantOverhead = offRate/onRate - 1
	}
	if seedRate > 0 {
		rec.SpeedupVsSeed = offRate / seedRate
	}
	rec.CacheMisses = uint64(points)
	rec.Finish(start)
	if err := bench.Append(path, rec); err != nil {
		return err
	}
	info("appended bench record", "path", path,
		"points_per_sec_off", fmt.Sprintf("%.1f", offRate),
		"points_per_sec_on", fmt.Sprintf("%.1f", onRate),
		"points_per_sec_per_cycle", fmt.Sprintf("%.1f", perCycleRate),
		"speedup_vs_seed", fmt.Sprintf("%.2fx", rec.SpeedupVsSeed),
		"overhead", fmt.Sprintf("%.1f%%", 100*rec.InvariantOverhead))
	return nil
}
