// Command tracegen materializes a catalog workload into a binary
// trace tape that pipesim (and any external tool) can replay.
//
// Usage:
//
//	tracegen -workload si95-gcc -n 100000 -o gcc.trace
//	tracegen -workload oltp-bank -n 50000 -o - | wc -c
//	tracegen -stats gcc.trace               # print a trace summary
//
// Exit codes: 0 success, 1 failure, 2 usage errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/logx"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		name  = fs.String("workload", "si95-gcc", "catalog workload name")
		n     = fs.Int("n", 100000, "instructions to generate")
		out   = fs.String("o", "", "output file ('-' for stdout)")
		stats = fs.String("stats", "", "print statistics for an existing trace file and exit")
		zip   = fs.Bool("z", false, "gzip-compress the output tape")
	)
	logOpts := logx.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	log, err := logOpts.Logger(stderr)
	if err != nil {
		fmt.Fprintln(stderr, "tracegen:", err)
		return 2
	}
	fail := func(err error) int {
		log.Error("tracegen failed", "err", err)
		return 1
	}

	if *stats != "" {
		f, err := os.Open(*stats)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		ins, err := trace.ReadAll(f)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintln(stdout, trace.Gather(ins))
		return 0
	}

	prof, ok := workload.ByName(*name)
	if !ok {
		fmt.Fprintf(stderr, "tracegen: unknown workload %q\n", *name)
		return 2
	}
	gen, err := workload.NewGenerator(prof)
	if err != nil {
		return fail(err)
	}

	w := stdout
	var file *os.File
	if *out != "" && *out != "-" {
		file, err = os.Create(*out)
		if err != nil {
			return fail(err)
		}
		w = file
	}
	closeOut := func() error {
		if file == nil {
			return nil
		}
		return file.Close()
	}

	if *zip {
		tw := trace.NewCompressedWriter(w, *n)
		for i := 0; i < *n; i++ {
			in, _ := gen.Next()
			if err := tw.Write(in); err != nil {
				closeOut()
				return fail(err)
			}
		}
		if err := tw.Close(); err != nil {
			closeOut()
			return fail(err)
		}
	} else {
		tw := trace.NewWriter(w, *n)
		for i := 0; i < *n; i++ {
			in, _ := gen.Next()
			if err := tw.Write(in); err != nil {
				closeOut()
				return fail(err)
			}
		}
		if err := tw.Flush(); err != nil {
			closeOut()
			return fail(err)
		}
	}
	if err := closeOut(); err != nil {
		return fail(err)
	}
	if file != nil {
		log.Info("wrote trace tape", "instructions", *n, "path", *out)
	}
	return 0
}
