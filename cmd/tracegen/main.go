// Command tracegen materializes a catalog workload into a binary
// trace tape that pipesim (and any external tool) can replay.
//
// Usage:
//
//	tracegen -workload si95-gcc -n 100000 -o gcc.trace
//	tracegen -workload oltp-bank -n 50000 -o - | wc -c
//	tracegen -stats gcc.trace               # print a trace summary
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"

	"repro/internal/logx"
	"repro/internal/trace"
	"repro/internal/workload"
)

// log is the process logger, replaced once -log-level/-log-format are
// parsed.
var log = slog.Default()

func main() {
	var (
		name  = flag.String("workload", "si95-gcc", "catalog workload name")
		n     = flag.Int("n", 100000, "instructions to generate")
		out   = flag.String("o", "", "output file ('-' for stdout)")
		stats = flag.String("stats", "", "print statistics for an existing trace file and exit")
		zip   = flag.Bool("z", false, "gzip-compress the output tape")
	)
	logOpts := logx.RegisterFlags(flag.CommandLine)
	flag.Parse()
	logger, err := logOpts.Logger(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(2)
	}
	log = logger

	if *stats != "" {
		f, err := os.Open(*stats)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		ins, err := trace.ReadAll(f)
		if err != nil {
			fatal(err)
		}
		fmt.Println(trace.Gather(ins))
		return
	}

	prof, ok := workload.ByName(*name)
	if !ok {
		fatal(fmt.Errorf("unknown workload %q", *name))
	}
	gen, err := workload.NewGenerator(prof)
	if err != nil {
		fatal(err)
	}

	var w io.Writer
	switch *out {
	case "", "-":
		w = os.Stdout
	default:
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}

	if *zip {
		tw := trace.NewCompressedWriter(w, *n)
		for i := 0; i < *n; i++ {
			in, _ := gen.Next()
			if err := tw.Write(in); err != nil {
				fatal(err)
			}
		}
		if err := tw.Close(); err != nil {
			fatal(err)
		}
	} else {
		tw := trace.NewWriter(w, *n)
		for i := 0; i < *n; i++ {
			in, _ := gen.Next()
			if err := tw.Write(in); err != nil {
				fatal(err)
			}
		}
		if err := tw.Flush(); err != nil {
			fatal(err)
		}
	}
	if *out != "" && *out != "-" {
		log.Info("wrote trace tape", "instructions", *n, "path", *out)
	}
}

func fatal(err error) {
	log.Error("tracegen failed", "err", err)
	os.Exit(1)
}
