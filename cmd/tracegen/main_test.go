package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args []string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code = run(args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

func TestWriteAndStatsRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tape.trace")
	code, _, stderr := runCLI(t, []string{"-workload", "si95-gcc", "-n", "5000", "-o", path})
	if code != 0 {
		t.Fatalf("write: exit %d, stderr:\n%s", code, stderr)
	}
	code, stdout, stderr := runCLI(t, []string{"-stats", path})
	if code != 0 {
		t.Fatalf("stats: exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "5000") {
		t.Errorf("stats output missing instruction count:\n%s", stdout)
	}
}

func TestCompressedTapeRoundTrip(t *testing.T) {
	plain := filepath.Join(t.TempDir(), "plain.trace")
	zipped := filepath.Join(t.TempDir(), "zipped.trace")
	if code, _, stderr := runCLI(t, []string{"-workload", "oltp-bank", "-n", "3000", "-o", plain}); code != 0 {
		t.Fatalf("plain write: exit %d, stderr:\n%s", code, stderr)
	}
	if code, _, stderr := runCLI(t, []string{"-workload", "oltp-bank", "-n", "3000", "-o", zipped, "-z"}); code != 0 {
		t.Fatalf("compressed write: exit %d, stderr:\n%s", code, stderr)
	}
	_, plainStats, _ := runCLI(t, []string{"-stats", plain})
	code, zipStats, stderr := runCLI(t, []string{"-stats", zipped})
	if code != 0 {
		t.Fatalf("compressed stats: exit %d, stderr:\n%s", code, stderr)
	}
	if plainStats != zipStats {
		t.Errorf("compressed tape decodes differently:\nplain: %s\nzip:   %s", plainStats, zipStats)
	}
}

func TestStdoutTape(t *testing.T) {
	code, stdout, stderr := runCLI(t, []string{"-workload", "si95-gcc", "-n", "1000", "-o", "-"})
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if len(stdout) == 0 {
		t.Fatal("no tape bytes on stdout")
	}
}

func TestUnknownWorkloadExitsTwo(t *testing.T) {
	if code, _, _ := runCLI(t, []string{"-workload", "no-such", "-o", "-"}); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestBadFlagExitsTwo(t *testing.T) {
	if code, _, _ := runCLI(t, []string{"-no-such-flag"}); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

func TestMissingStatsFileExitsOne(t *testing.T) {
	if code, _, _ := runCLI(t, []string{"-stats", filepath.Join(t.TempDir(), "missing.trace")}); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
}
