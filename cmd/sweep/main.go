// Command sweep simulates one workload across a range of pipeline
// depths and prints the full design-space table: performance, power
// under both gating disciplines, every BIPS^m/W metric, and the
// cubic-fit optima — one workload's worth of the paper's evaluation.
//
// Usage:
//
//	sweep -workload si95-gcc
//	sweep -workload sf-swim -min 2 -max 30 -n 50000
//
// Caching:
//
//	sweep -cache-dir ~/.cache/repro        # memoize design points on disk
//	sweep -cache-dir d -cache-readonly     # reuse but never write
//	sweep -cache-dir d -cache-clear        # drop stale entries first
//
// Observability:
//
//	sweep -metrics-out metrics.jsonl         # aggregated counters + manifest
//	sweep -trace out.json -trace-depth 10    # Chrome trace of one depth's run
//	sweep -pprof localhost:6060              # /debug/pprof + /debug/vars
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/resultcache"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// openCache opens the result cache named by the CLI flags; a nil
// cache (empty dir) disables memoization entirely.
func openCache(dir string, readonly, clear bool, reg *telemetry.Registry) (*resultcache.Cache, error) {
	if dir == "" {
		return nil, nil
	}
	c, err := resultcache.Open(resultcache.Options{Dir: dir, ReadOnly: readonly, Metrics: reg})
	if err != nil {
		return nil, err
	}
	if clear {
		if err := c.Clear(); err != nil {
			return nil, fmt.Errorf("clear cache: %w", err)
		}
	}
	return c, nil
}

// cacheSummary reports cache effectiveness for the run.
func cacheSummary(w io.Writer, prog string, c *resultcache.Cache) {
	if c == nil {
		return
	}
	st := c.Stats()
	fmt.Fprintf(w, "%s: cache %d hits / %d misses (%.0f%% hit rate), %d stored\n",
		prog, st.Hits, st.Misses, 100*st.HitRate(), st.Stores)
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		name     = fs.String("workload", "si95-gcc", "catalog workload name")
		minDepth = fs.Int("min", 2, "minimum depth")
		maxDepth = fs.Int("max", 25, "maximum depth")
		n        = fs.Int("n", 30000, "instructions per run")
		warm     = fs.Int("warmup", 30000, "warm-up instructions (-1 for none)")
		ooo      = fs.Bool("ooo", false, "out-of-order execution with register renaming")
		mach     = fs.String("machine", "zseries", "machine preset: zseries|zseries-ooo|narrow|wide")

		cacheDir   = fs.String("cache-dir", "", "directory for the on-disk result cache (empty = no caching)")
		cacheRO    = fs.Bool("cache-readonly", false, "read cached results but never write new ones")
		cacheClear = fs.Bool("cache-clear", false, "drop all cached results before running")

		tracePath  = fs.String("trace", "", "write a Chrome trace_event file of the -trace-depth run to this file")
		traceDepth = fs.Int("trace-depth", core.DefaultRefDepth, "pipeline depth whose run the -trace file records")
		metricsOut = fs.String("metrics-out", "", "write a JSONL metrics dump (manifest + counters aggregated over the sweep) to this file")
		pprofAddr  = fs.String("pprof", "", "serve /debug/pprof and /debug/vars on this address (e.g. localhost:6060)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	fail := func(err error) int {
		fmt.Fprintln(stderr, "sweep:", err)
		return 1
	}

	if *pprofAddr != "" {
		addr, err := telemetry.ServeDebug(*pprofAddr)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stderr, "sweep: debug server at http://%s/debug/pprof/\n", addr)
	}

	prof, ok := workload.ByName(*name)
	if !ok {
		return fail(fmt.Errorf("unknown workload %q", *name))
	}
	var depths []int
	for d := *minDepth; d <= *maxDepth; d++ {
		depths = append(depths, d)
	}

	var tracer *telemetry.Tracer
	if *tracePath != "" {
		tracer = pipeline.NewTracer(0)
	}
	var reg *telemetry.Registry
	if *metricsOut != "" || *pprofAddr != "" {
		reg = telemetry.NewRegistry()
		reg.PublishExpvar("repro_metrics")
	}

	cache, err := openCache(*cacheDir, *cacheRO, *cacheClear, reg)
	if err != nil {
		return fail(err)
	}

	start := time.Now()
	cfg := core.StudyConfig{Depths: depths, Instructions: *n, Warmup: *warm, Cache: cache}
	cfg.Machine = func(d int) (pipeline.Config, error) {
		mc, err := pipeline.PresetConfig(pipeline.Preset(*mach), d)
		if err != nil {
			return mc, err
		}
		if *ooo {
			mc.OutOfOrder = true
		}
		// One depth of the sweep can carry the event tracer; attaching
		// it to every depth would interleave runs in a single ring.
		if tracer != nil && d == *traceDepth {
			mc.Tracer = tracer
		}
		return mc, nil
	}
	s, err := core.RunSweep(cfg, prof)
	if err != nil {
		return fail(err)
	}

	fmt.Fprintf(stdout, "workload %s (%s), %d instructions/run\n\n", prof.Name, prof.Class, *n)
	fmt.Fprintf(stdout, "%5s %6s %7s %9s %10s %10s %12s %12s\n",
		"depth", "FO4", "IPC", "BIPS", "W(gated)", "W(plain)", "BIPS^3/W g", "BIPS^3/W n")
	for _, p := range s.Points {
		bips := p.Result.BIPS()
		fmt.Fprintf(stdout, "%5d %6.2f %7.3f %9.5f %10.4g %10.4g %12.4g %12.4g\n",
			p.Depth, p.FO4, p.Result.IPC(), bips,
			p.GatedPower.Total(), p.PlainPower.Total(),
			metrics.BIPS3PerWatt.Value(bips, p.GatedPower.Total()),
			metrics.BIPS3PerWatt.Value(bips, p.PlainPower.Total()))
	}

	fmt.Fprintln(stdout)
	for _, k := range metrics.Kinds {
		for _, gated := range []bool{true, false} {
			o, err := s.FindOptimum(k, gated)
			if err != nil {
				fmt.Fprintf(stderr, "sweep: optimum %s (gated=%v): %v\n", k, gated, err)
				continue
			}
			mode := "non-gated"
			if gated {
				mode = "gated"
			}
			pos := "interior"
			if !o.Interior {
				pos = "edge"
			}
			fmt.Fprintf(stdout, "optimum %-9s %-9s: %5.1f stages (%5.1f FO4, %s)\n",
				k, mode, o.Depth, o.FO4, pos)
		}
	}

	if ex, err := s.CurveExtraction(core.DefaultRefDepth); err == nil {
		fmt.Fprintf(stdout, "\ncurve-fitted parameters: %s\n", ex)
	} else {
		fmt.Fprintf(stderr, "sweep: curve extraction: %v\n", err)
	}
	if tp, err := s.FittedTheoryParams(core.DefaultRefDepth, 3, true); err == nil {
		o := tp.OptimumExact()
		fmt.Fprintf(stdout, "analytic BIPS^3/W optimum (clock gated): %.1f stages (%.1f FO4)\n", o.Depth, o.FO4)
	} else {
		fmt.Fprintf(stderr, "sweep: theory fit: %v\n", err)
	}

	// One manifest describes the whole sweep; the per-depth config hash
	// is taken from the traced (or nearest-to-reference) point.
	man := telemetry.NewManifest("sweep")
	man.SetParam("workload", prof.Name)
	man.SetParam("seed", fmt.Sprintf("%#x", prof.Seed))
	man.SetParam("instructions", strconv.Itoa(*n))
	man.SetParam("depth_min", strconv.Itoa(*minDepth))
	man.SetParam("depth_max", strconv.Itoa(*maxDepth))
	man.SetParam("machine", *mach)
	if p, ok := s.PointAt(*traceDepth); ok {
		man.ConfigHash = p.Result.Config.Fingerprint()
	} else if len(s.Points) > 0 {
		man.ConfigHash = s.Points[0].Result.Config.Fingerprint()
	}
	man.Finish(start)

	if reg != nil {
		for _, p := range s.Points {
			p.Result.PublishMetrics(reg)
		}
		reg.Gauge("sweep.depth_points").Set(float64(len(s.Points)))
		if p, ok := s.PointAt(*traceDepth); ok {
			p.GatedPower.Publish(reg, "power.gated")
			p.PlainPower.Publish(reg, "power.plain")
		}
	}
	if *metricsOut != "" {
		if err := writeTo(*metricsOut, func(f *os.File) error {
			return reg.WriteJSONL(f, &man)
		}); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stderr, "sweep: wrote metrics to %s\n", *metricsOut)
	}
	if *tracePath != "" {
		if err := writeTo(*tracePath, func(f *os.File) error {
			return tracer.WriteChromeTrace(f, &man)
		}); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stderr, "sweep: wrote Chrome trace of depth %d (%d events, %d evicted) to %s\n",
			*traceDepth, tracer.Len(), tracer.Dropped(), *tracePath)
	}
	cacheSummary(stderr, "sweep", cache)
	return 0
}

// writeTo creates path, runs fn on the file, and closes it, reporting
// the first error.
func writeTo(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
