// Command sweep simulates one workload across a range of pipeline
// depths and prints the full design-space table: performance, power
// under both gating disciplines, every BIPS^m/W metric, and the
// cubic-fit optima — one workload's worth of the paper's evaluation.
//
// Usage:
//
//	sweep -workload si95-gcc
//	sweep -workload sf-swim -min 2 -max 30 -n 50000
//
// Caching:
//
//	sweep -cache-dir ~/.cache/repro        # memoize design points on disk
//	sweep -cache-dir d -cache-readonly     # reuse but never write
//	sweep -cache-dir d -cache-clear        # drop stale entries first
//
// Observability:
//
//	sweep -metrics-out metrics.jsonl         # aggregated counters + manifest
//	sweep -trace out.json -trace-depth 10    # Chrome trace of one depth's run
//	sweep -pprof localhost:6060              # /debug/pprof, /debug/vars,
//	                                         # /metrics (Prometheus),
//	                                         # /progress (SSE), /dash (live UI)
//	sweep -pprof :0 -linger 30s              # keep the server up after the
//	                                         # sweep so scrapers can collect
//	sweep -bench-out BENCH_sweep.json        # append a throughput record
//	sweep -log-level debug -log-format json  # structured diagnostics
//	sweep -profile-dir prof/                 # CPU/heap/allocs pprof capture,
//	                                         # hierarchical span trace
//	                                         # (spans.jsonl + Chrome view) and
//	                                         # a top-N hot-function summary
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/logx"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/profile"
	"repro/internal/resultcache"
	"repro/internal/serve/spec"
	"repro/internal/telemetry"
	"repro/internal/telemetry/promexp"
	"repro/internal/telemetry/span"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// openCache opens the result cache named by the CLI flags; a nil
// cache (empty dir) disables memoization entirely.
func openCache(dir string, readonly, clear bool, reg *telemetry.Registry) (*resultcache.Cache, error) {
	if dir == "" {
		return nil, nil
	}
	c, err := resultcache.Open(resultcache.Options{Dir: dir, ReadOnly: readonly, Metrics: reg})
	if err != nil {
		return nil, err
	}
	if clear {
		if err := c.Clear(); err != nil {
			return nil, fmt.Errorf("clear cache: %w", err)
		}
	}
	return c, nil
}

// cacheSummary reports cache effectiveness for the run.
func cacheSummary(log *slog.Logger, c *resultcache.Cache) {
	if c == nil {
		return
	}
	st := c.Stats()
	log.Info("cache summary",
		"hits", st.Hits, "misses", st.Misses,
		"hit_rate", fmt.Sprintf("%.0f%%", 100*st.HitRate()),
		"stored", st.Stores)
}

// dashUnits renders one point's clock-gated per-unit attribution for
// the dashboard heatmap (pipeline unit order, merged groups under
// their leader).
func dashUnits(pt core.DepthPoint) []telemetry.UnitPower {
	out := make([]telemetry.UnitPower, 0, pipeline.NumUnits)
	for u := 0; u < pipeline.NumUnits; u++ {
		if pt.GatedPower.PerUnit[u] == 0 {
			continue
		}
		out = append(out, telemetry.UnitPower{
			Unit:    pipeline.Unit(u).String(),
			Power:   pt.GatedPower.PerUnit[u],
			Dynamic: pt.GatedPower.PerUnitDynamic[u],
		})
	}
	return out
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		name     = fs.String("workload", "si95-gcc", "catalog workload name")
		minDepth = fs.Int("min", 2, "minimum depth")
		maxDepth = fs.Int("max", 25, "maximum depth")
		n        = fs.Int("n", 30000, "instructions per run")
		warm     = fs.Int("warmup", 30000, "warm-up instructions (-1 for none)")
		ooo      = fs.Bool("ooo", false, "out-of-order execution with register renaming")
		mach     = fs.String("machine", "zseries", "machine preset: zseries|zseries-ooo|narrow|wide")

		cacheDir   = fs.String("cache-dir", "", "directory for the on-disk result cache (empty = no caching)")
		cacheRO    = fs.Bool("cache-readonly", false, "read cached results but never write new ones")
		cacheClear = fs.Bool("cache-clear", false, "drop all cached results before running")

		tracePath  = fs.String("trace", "", "write a Chrome trace_event file of the -trace-depth run to this file")
		traceDepth = fs.Int("trace-depth", core.DefaultRefDepth, "pipeline depth whose run the -trace file records")
		metricsOut = fs.String("metrics-out", "", "write a JSONL metrics dump (manifest + counters aggregated over the sweep) to this file")
		pprofAddr  = fs.String("pprof", "", "serve /debug/pprof, /debug/vars, /metrics, /progress and /dash on this address (e.g. localhost:6060)")
		linger     = fs.Duration("linger", 0, "keep the -pprof server alive this long after the sweep finishes (for scrapers)")
		benchOut   = fs.String("bench-out", "", "append a throughput record (wall time, points/sec, cache hit rate) to this JSONL file")
		profileDir = fs.String("profile-dir", "", "capture CPU/heap/allocs pprof profiles, a span trace (spans.jsonl + spans_trace.json) and a hot-function summary into this directory")
	)
	logOpts := logx.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	log, err := logOpts.Logger(stderr)
	if err != nil {
		fmt.Fprintln(stderr, "sweep:", err)
		return 2
	}

	fail := func(err error) int {
		log.Error("sweep failed", "err", err)
		return 1
	}

	var reg *telemetry.Registry
	if *metricsOut != "" || *pprofAddr != "" || *benchOut != "" || *profileDir != "" {
		reg = telemetry.NewRegistry()
		reg.PublishExpvar("repro_metrics")
	}

	// -profile-dir turns on both cost-attribution layers at once: the
	// pprof capture (where did the CPU go, by function) and the span
	// tracer (where did the wall time go, by study phase).
	var spans *span.Tracer
	var capture *profile.Capture
	if *profileDir != "" {
		spans = span.NewTracer(reg, 0)
		capture, err = profile.Start(*profileDir)
		if err != nil {
			return fail(err)
		}
	}

	var (
		dbg    *telemetry.DebugServer
		broker *telemetry.Broker
	)
	if *pprofAddr != "" {
		dbg, err = telemetry.ServeDebug(*pprofAddr)
		if err != nil {
			return fail(err)
		}
		defer dbg.Close()
		broker = telemetry.NewBroker(0)
		defer broker.Close()
		dbg.Handle("/metrics", promexp.Handler(reg))
		dbg.Handle("/progress", broker)
		dbg.Handle("/dash", telemetry.DashHandler())
		log.Info("debug server up",
			"pprof", "http://"+dbg.Addr()+"/debug/pprof/",
			"metrics", "http://"+dbg.Addr()+"/metrics",
			"dash", "http://"+dbg.Addr()+"/dash")
	}

	// The CLI flags compile to the same study spec depthd serves, so
	// validation (depth bounds, workload membership, machine presets)
	// has one home for every front end.
	sp := spec.Spec{
		Workloads:    []string{*name},
		MinDepth:     *minDepth,
		MaxDepth:     *maxDepth,
		Instructions: *n,
		Warmup:       *warm,
		Machine:      *mach,
		OutOfOrder:   *ooo,
	}
	if err := sp.Validate(spec.DefaultLimits()); err != nil {
		return fail(err)
	}
	sp = sp.Normalize()
	profs, err := sp.Profiles()
	if err != nil {
		return fail(err)
	}
	prof := profs[0]
	depths := sp.Depths

	var tracer *telemetry.Tracer
	if *tracePath != "" {
		tracer = pipeline.NewTracer(0)
	}

	cache, err := openCache(*cacheDir, *cacheRO, *cacheClear, reg)
	if err != nil {
		return fail(err)
	}

	start := time.Now()
	cfg := core.StudyConfig{Depths: depths, Instructions: sp.Instructions, Warmup: sp.Warmup, Cache: cache, Metrics: reg, Spans: spans}
	var liveHits atomic.Int64
	if broker != nil {
		_ = broker.Publish(telemetry.DashEvent{
			Kind: "start", Workload: prof.Name, Class: prof.Class.String(),
			Total: len(depths),
		})
		cfg.Progress = func(p core.Progress) {
			if p.CacheHit {
				liveHits.Add(1)
			}
			elapsed := time.Since(start).Seconds()
			rate := 0.0
			if elapsed > 0 {
				rate = float64(p.Done) / elapsed
			}
			eta := 0.0
			if rate > 0 {
				eta = float64(p.Total-p.Done) / rate
			}
			bips := p.Point.Result.BIPS()
			_ = broker.Publish(telemetry.DashEvent{
				Kind:         "point",
				Workload:     p.Workload,
				Class:        p.Class.String(),
				Depth:        p.Depth,
				Done:         p.Done,
				Total:        p.Total,
				CacheHit:     p.CacheHit,
				BIPS:         bips,
				Metric:       metrics.BIPS3PerWatt.Value(bips, p.Point.GatedPower.Total()),
				MetricPlain:  metrics.BIPS3PerWatt.Value(bips, p.Point.PlainPower.Total()),
				ETASec:       eta,
				PointsPerSec: rate,
				CacheHits:    int(liveHits.Load()),
				Units:        dashUnits(p.Point),
			})
		}
	}
	machine := sp.MachineFunc()
	cfg.Machine = func(d int) (pipeline.Config, error) {
		mc, err := machine(d)
		if err != nil {
			return mc, err
		}
		// One depth of the sweep can carry the event tracer; attaching
		// it to every depth would interleave runs in a single ring.
		if tracer != nil && d == *traceDepth {
			mc.Tracer = tracer
		}
		return mc, nil
	}
	s, err := core.RunSweep(cfg, prof)
	if err != nil {
		return fail(err)
	}

	fmt.Fprintf(stdout, "workload %s (%s), %d instructions/run\n\n", prof.Name, prof.Class, *n)
	fmt.Fprintf(stdout, "%5s %6s %7s %9s %10s %10s %12s %12s\n",
		"depth", "FO4", "IPC", "BIPS", "W(gated)", "W(plain)", "BIPS^3/W g", "BIPS^3/W n")
	for _, p := range s.Points {
		bips := p.Result.BIPS()
		fmt.Fprintf(stdout, "%5d %6.2f %7.3f %9.5f %10.4g %10.4g %12.4g %12.4g\n",
			p.Depth, p.FO4, p.Result.IPC(), bips,
			p.GatedPower.Total(), p.PlainPower.Total(),
			metrics.BIPS3PerWatt.Value(bips, p.GatedPower.Total()),
			metrics.BIPS3PerWatt.Value(bips, p.PlainPower.Total()))
	}

	// Cubic-fit and analytic-model failures are counted, not fatal: a
	// monotone metric curve still prints its design-space table. The
	// count feeds sweep.fit_errors and the end-of-run summary.
	fitErrors := 0
	noteFitError := func(what string, err error, attrs ...any) {
		fitErrors++
		if reg != nil {
			reg.Counter("sweep.fit_errors").Inc()
		}
		log.Warn(what, append(attrs, "err", err)...)
	}

	// The fit phase runs outside RunSweep, so it carries its own span.
	fitSpan := spans.Start("fit", span.String("workload", prof.Name))

	fmt.Fprintln(stdout)
	for _, k := range metrics.Kinds {
		for _, gated := range []bool{true, false} {
			o, err := s.FindOptimum(k, gated)
			if err != nil {
				noteFitError("optimum fit failed", err, "metric", k.String(), "gated", gated)
				continue
			}
			mode := "non-gated"
			if gated {
				mode = "gated"
			}
			pos := "interior"
			if !o.Interior {
				pos = "edge"
			}
			fmt.Fprintf(stdout, "optimum %-9s %-9s: %5.1f stages (%5.1f FO4, %s)\n",
				k, mode, o.Depth, o.FO4, pos)
		}
	}

	if ex, err := s.CurveExtraction(core.DefaultRefDepth); err == nil {
		fmt.Fprintf(stdout, "\ncurve-fitted parameters: %s\n", ex)
	} else {
		noteFitError("curve extraction failed", err)
	}
	if tp, err := s.FittedTheoryParams(core.DefaultRefDepth, 3, true); err == nil {
		o := tp.OptimumExact()
		fmt.Fprintf(stdout, "analytic BIPS^3/W optimum (clock gated): %.1f stages (%.1f FO4)\n", o.Depth, o.FO4)
	} else {
		noteFitError("theory fit failed", err)
	}
	fitSpan.End()

	// One manifest describes the whole sweep; the per-depth config hash
	// is taken from the traced (or nearest-to-reference) point.
	man := telemetry.NewManifest("sweep")
	man.SetParam("workload", prof.Name)
	man.SetParam("seed", fmt.Sprintf("%#x", prof.Seed))
	man.SetParam("instructions", strconv.Itoa(*n))
	man.SetParam("depth_min", strconv.Itoa(*minDepth))
	man.SetParam("depth_max", strconv.Itoa(*maxDepth))
	man.SetParam("machine", *mach)
	if p, ok := s.PointAt(*traceDepth); ok {
		man.ConfigHash = p.Result.Config.Fingerprint()
	} else if len(s.Points) > 0 {
		man.ConfigHash = s.Points[0].Result.Config.Fingerprint()
	}
	man.Finish(start)

	if *profileDir != "" {
		// Stop the capture before exporting: the exports themselves are
		// bookkeeping, not sweep cost, and Stop writes the heap/allocs
		// snapshots plus summary.json into the directory.
		sum, err := capture.Stop()
		if err != nil {
			return fail(err)
		}
		for i, hf := range sum.Top {
			if i >= 5 {
				break
			}
			man.SetParam(fmt.Sprintf("hot_func_%d", i),
				fmt.Sprintf("%s %.1f%%", hf.Name, 100*hf.Frac))
		}
		if err := writeTo(filepath.Join(*profileDir, "spans.jsonl"), func(f *os.File) error {
			return spans.WriteJSONL(f, &man)
		}); err != nil {
			return fail(err)
		}
		if err := writeTo(filepath.Join(*profileDir, "spans_trace.json"), func(f *os.File) error {
			return spans.WriteChromeTrace(f, &man)
		}); err != nil {
			return fail(err)
		}
		hot := "none (sweep too short for CPU samples)"
		if len(sum.Top) > 0 {
			hot = fmt.Sprintf("%s %.1f%%", sum.Top[0].Name, 100*sum.Top[0].Frac)
		}
		log.Info("wrote profiles", "dir", *profileDir,
			"spans", spans.Len(), "spans_dropped", spans.Dropped(), "hottest", hot)
	}

	if reg != nil {
		// Per-run pipeline counters and per-unit attribution were
		// published point-by-point by core as the sweep progressed;
		// only whole-sweep figures are added here.
		reg.Gauge("sweep.depth_points").Set(float64(len(s.Points)))
		if p, ok := s.PointAt(*traceDepth); ok {
			p.GatedPower.Publish(reg, "power.gated")
			p.PlainPower.Publish(reg, "power.plain")
		}
	}
	if *metricsOut != "" {
		if err := writeTo(*metricsOut, func(f *os.File) error {
			return reg.WriteJSONL(f, &man)
		}); err != nil {
			return fail(err)
		}
		log.Info("wrote metrics", "path", *metricsOut)
	}
	if *tracePath != "" {
		if err := writeTo(*tracePath, func(f *os.File) error {
			return tracer.WriteChromeTrace(f, &man)
		}); err != nil {
			return fail(err)
		}
		log.Info("wrote Chrome trace", "depth", *traceDepth,
			"events", tracer.Len(), "evicted", tracer.Dropped(), "path", *tracePath)
	}
	cacheSummary(log, cache)
	if fitErrors > 0 {
		log.Warn("run summary", "fit_errors", fitErrors, "points", len(s.Points))
	} else {
		log.Info("run summary", "fit_errors", 0, "points", len(s.Points))
	}

	wall := time.Since(start)
	if broker != nil {
		_ = broker.Publish(telemetry.DashEvent{
			Kind: "done", Workload: prof.Name,
			Done: len(s.Points), Total: len(depths),
			PointsPerSec: float64(len(s.Points)) / wall.Seconds(),
			CacheHits:    int(liveHits.Load()),
			FitErrors:    fitErrors,
			WallSec:      wall.Seconds(),
		})
	}

	if *benchOut != "" {
		rec := bench.NewRecord("sweep", start)
		rec.Workload = prof.Name
		rec.Points = len(s.Points)
		rec.FitErrors = uint64(fitErrors)
		if cache != nil {
			st := cache.Stats()
			rec.CacheHits, rec.CacheMisses = st.Hits, st.Misses
			rec.CacheHitRate = st.HitRate()
		} else {
			rec.CacheMisses = uint64(len(s.Points))
		}
		if reg != nil {
			rec.Phases = map[string]bench.Phase{
				"point":        bench.PhaseFrom(reg.Histogram("sweep.point_us")),
				"point_cached": bench.PhaseFrom(reg.Histogram("sweep.point_cached_us")),
			}
			if spans != nil {
				// Span-phase quantiles make the trajectory answer not
				// just "slower?" but "which phase got slower?".
				for _, ph := range []string{"pack", "decode", "warmup", "simulate", "power", "fit"} {
					if p := bench.PhaseFrom(reg.Histogram("span." + ph + "_us")); p.Count > 0 {
						rec.Phases[ph] = p
					}
				}
			}
		}
		rec.Finish(start)
		if seed := bench.SeedRate(*benchOut, func(r bench.Record) float64 { return r.PointsPerSec }); seed > 0 {
			rec.SpeedupVsSeed = rec.PointsPerSec / seed
		}
		if err := bench.Append(*benchOut, rec); err != nil {
			return fail(err)
		}
		log.Info("appended bench record", "path", *benchOut,
			"points_per_sec", fmt.Sprintf("%.1f", rec.PointsPerSec),
			"speedup_vs_seed", fmt.Sprintf("%.2fx", rec.SpeedupVsSeed))
	}

	if dbg != nil && *linger > 0 {
		log.Info("lingering for scrapers", "addr", dbg.Addr(), "for", linger.String())
		time.Sleep(*linger)
	}
	return 0
}

// writeTo creates path, runs fn on the file, and closes it, reporting
// the first error.
func writeTo(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
