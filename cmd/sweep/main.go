// Command sweep simulates one workload across a range of pipeline
// depths and prints the full design-space table: performance, power
// under both gating disciplines, every BIPS^m/W metric, and the
// cubic-fit optima — one workload's worth of the paper's evaluation.
//
// Usage:
//
//	sweep -workload si95-gcc
//	sweep -workload sf-swim -min 2 -max 30 -n 50000
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

func main() {
	var (
		name = flag.String("workload", "si95-gcc", "catalog workload name")
		min  = flag.Int("min", 2, "minimum depth")
		max  = flag.Int("max", 25, "maximum depth")
		n    = flag.Int("n", 30000, "instructions per run")
		warm = flag.Int("warmup", 30000, "warm-up instructions (-1 for none)")
		ooo  = flag.Bool("ooo", false, "out-of-order execution with register renaming")
		mach = flag.String("machine", "zseries", "machine preset: zseries|zseries-ooo|narrow|wide")
	)
	flag.Parse()

	prof, ok := workload.ByName(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "sweep: unknown workload %q\n", *name)
		os.Exit(1)
	}
	var depths []int
	for d := *min; d <= *max; d++ {
		depths = append(depths, d)
	}
	cfg := core.StudyConfig{Depths: depths, Instructions: *n, Warmup: *warm}
	cfg.Machine = func(d int) (pipeline.Config, error) {
		mc, err := pipeline.PresetConfig(pipeline.Preset(*mach), d)
		if err != nil {
			return mc, err
		}
		if *ooo {
			mc.OutOfOrder = true
		}
		return mc, nil
	}
	s, err := core.RunSweep(cfg, prof)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}

	fmt.Printf("workload %s (%s), %d instructions/run\n\n", prof.Name, prof.Class, *n)
	fmt.Printf("%5s %6s %7s %9s %10s %10s %12s %12s\n",
		"depth", "FO4", "IPC", "BIPS", "W(gated)", "W(plain)", "BIPS^3/W g", "BIPS^3/W n")
	for _, p := range s.Points {
		bips := p.Result.BIPS()
		fmt.Printf("%5d %6.2f %7.3f %9.5f %10.4g %10.4g %12.4g %12.4g\n",
			p.Depth, p.FO4, p.Result.IPC(), bips,
			p.GatedPower.Total(), p.PlainPower.Total(),
			metrics.BIPS3PerWatt.Value(bips, p.GatedPower.Total()),
			metrics.BIPS3PerWatt.Value(bips, p.PlainPower.Total()))
	}

	fmt.Println()
	for _, k := range metrics.Kinds {
		for _, gated := range []bool{true, false} {
			o, err := s.FindOptimum(k, gated)
			if err != nil {
				continue
			}
			mode := "non-gated"
			if gated {
				mode = "gated"
			}
			pos := "interior"
			if !o.Interior {
				pos = "edge"
			}
			fmt.Printf("optimum %-9s %-9s: %5.1f stages (%5.1f FO4, %s)\n",
				k, mode, o.Depth, o.FO4, pos)
		}
	}

	if ex, err := s.CurveExtraction(core.DefaultRefDepth); err == nil {
		fmt.Printf("\ncurve-fitted parameters: %s\n", ex)
	}
	if tp, err := s.FittedTheoryParams(core.DefaultRefDepth, 3, true); err == nil {
		o := tp.OptimumExact()
		fmt.Printf("analytic BIPS^3/W optimum (clock gated): %.1f stages (%.1f FO4)\n", o.Depth, o.FO4)
	}
}
