// Command sweep simulates one workload across a range of pipeline
// depths and prints the full design-space table: performance, power
// under both gating disciplines, every BIPS^m/W metric, and the
// cubic-fit optima — one workload's worth of the paper's evaluation.
//
// Usage:
//
//	sweep -workload si95-gcc
//	sweep -workload sf-swim -min 2 -max 30 -n 50000
//
// Observability:
//
//	sweep -metrics-out metrics.jsonl         # aggregated counters + manifest
//	sweep -trace out.json -trace-depth 10    # Chrome trace of one depth's run
//	sweep -pprof localhost:6060              # /debug/pprof + /debug/vars
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

func main() {
	var (
		name     = flag.String("workload", "si95-gcc", "catalog workload name")
		minDepth = flag.Int("min", 2, "minimum depth")
		maxDepth = flag.Int("max", 25, "maximum depth")
		n        = flag.Int("n", 30000, "instructions per run")
		warm     = flag.Int("warmup", 30000, "warm-up instructions (-1 for none)")
		ooo      = flag.Bool("ooo", false, "out-of-order execution with register renaming")
		mach     = flag.String("machine", "zseries", "machine preset: zseries|zseries-ooo|narrow|wide")

		tracePath  = flag.String("trace", "", "write a Chrome trace_event file of the -trace-depth run to this file")
		traceDepth = flag.Int("trace-depth", core.DefaultRefDepth, "pipeline depth whose run the -trace file records")
		metricsOut = flag.String("metrics-out", "", "write a JSONL metrics dump (manifest + counters aggregated over the sweep) to this file")
		pprofAddr  = flag.String("pprof", "", "serve /debug/pprof and /debug/vars on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	if *pprofAddr != "" {
		addr, err := telemetry.ServeDebug(*pprofAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "sweep: debug server at http://%s/debug/pprof/\n", addr)
	}

	prof, ok := workload.ByName(*name)
	if !ok {
		fatal(fmt.Errorf("unknown workload %q", *name))
	}
	var depths []int
	for d := *minDepth; d <= *maxDepth; d++ {
		depths = append(depths, d)
	}

	var tracer *telemetry.Tracer
	if *tracePath != "" {
		tracer = pipeline.NewTracer(0)
	}
	var reg *telemetry.Registry
	if *metricsOut != "" || *pprofAddr != "" {
		reg = telemetry.NewRegistry()
		reg.PublishExpvar("repro_metrics")
	}

	start := time.Now()
	cfg := core.StudyConfig{Depths: depths, Instructions: *n, Warmup: *warm}
	cfg.Machine = func(d int) (pipeline.Config, error) {
		mc, err := pipeline.PresetConfig(pipeline.Preset(*mach), d)
		if err != nil {
			return mc, err
		}
		if *ooo {
			mc.OutOfOrder = true
		}
		// One depth of the sweep can carry the event tracer; attaching
		// it to every depth would interleave runs in a single ring.
		if tracer != nil && d == *traceDepth {
			mc.Tracer = tracer
		}
		return mc, nil
	}
	s, err := core.RunSweep(cfg, prof)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("workload %s (%s), %d instructions/run\n\n", prof.Name, prof.Class, *n)
	fmt.Printf("%5s %6s %7s %9s %10s %10s %12s %12s\n",
		"depth", "FO4", "IPC", "BIPS", "W(gated)", "W(plain)", "BIPS^3/W g", "BIPS^3/W n")
	for _, p := range s.Points {
		bips := p.Result.BIPS()
		fmt.Printf("%5d %6.2f %7.3f %9.5f %10.4g %10.4g %12.4g %12.4g\n",
			p.Depth, p.FO4, p.Result.IPC(), bips,
			p.GatedPower.Total(), p.PlainPower.Total(),
			metrics.BIPS3PerWatt.Value(bips, p.GatedPower.Total()),
			metrics.BIPS3PerWatt.Value(bips, p.PlainPower.Total()))
	}

	fmt.Println()
	for _, k := range metrics.Kinds {
		for _, gated := range []bool{true, false} {
			o, err := s.FindOptimum(k, gated)
			if err != nil {
				continue
			}
			mode := "non-gated"
			if gated {
				mode = "gated"
			}
			pos := "interior"
			if !o.Interior {
				pos = "edge"
			}
			fmt.Printf("optimum %-9s %-9s: %5.1f stages (%5.1f FO4, %s)\n",
				k, mode, o.Depth, o.FO4, pos)
		}
	}

	if ex, err := s.CurveExtraction(core.DefaultRefDepth); err == nil {
		fmt.Printf("\ncurve-fitted parameters: %s\n", ex)
	}
	if tp, err := s.FittedTheoryParams(core.DefaultRefDepth, 3, true); err == nil {
		o := tp.OptimumExact()
		fmt.Printf("analytic BIPS^3/W optimum (clock gated): %.1f stages (%.1f FO4)\n", o.Depth, o.FO4)
	}

	// One manifest describes the whole sweep; the per-depth config hash
	// is taken from the traced (or nearest-to-reference) point.
	man := telemetry.NewManifest("sweep")
	man.SetParam("workload", prof.Name)
	man.SetParam("seed", fmt.Sprintf("%#x", prof.Seed))
	man.SetParam("instructions", strconv.Itoa(*n))
	man.SetParam("depth_min", strconv.Itoa(*minDepth))
	man.SetParam("depth_max", strconv.Itoa(*maxDepth))
	man.SetParam("machine", *mach)
	if p, ok := s.PointAt(*traceDepth); ok {
		man.ConfigHash = p.Result.Config.Fingerprint()
	} else if len(s.Points) > 0 {
		man.ConfigHash = s.Points[0].Result.Config.Fingerprint()
	}
	man.Finish(start)

	if reg != nil {
		for _, p := range s.Points {
			p.Result.PublishMetrics(reg)
		}
		reg.Gauge("sweep.depth_points").Set(float64(len(s.Points)))
		if p, ok := s.PointAt(*traceDepth); ok {
			p.GatedPower.Publish(reg, "power.gated")
			p.PlainPower.Publish(reg, "power.plain")
		}
	}
	if *metricsOut != "" {
		if err := writeTo(*metricsOut, func(f *os.File) error {
			return reg.WriteJSONL(f, &man)
		}); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "sweep: wrote metrics to %s\n", *metricsOut)
	}
	if *tracePath != "" {
		if err := writeTo(*tracePath, func(f *os.File) error {
			return tracer.WriteChromeTrace(f, &man)
		}); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "sweep: wrote Chrome trace of depth %d (%d events, %d evicted) to %s\n",
			*traceDepth, tracer.Len(), tracer.Dropped(), *tracePath)
	}
}

// writeTo creates path, runs fn on the file, and closes it, reporting
// the first error.
func writeTo(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
