package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
)

// fastArgs keeps CLI tests quick: few depths, short seeded runs.
func fastArgs(extra ...string) []string {
	args := []string{
		"-workload", "si95-gcc",
		"-min", "4", "-max", "8",
		"-n", "2000", "-warmup", "-1",
	}
	return append(args, extra...)
}

func runCLI(t *testing.T, args []string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code = run(args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

func TestRunSucceeds(t *testing.T) {
	code, stdout, stderr := runCLI(t, fastArgs())
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "workload si95-gcc") {
		t.Fatalf("missing header in output:\n%s", stdout)
	}
	if !strings.Contains(stdout, "optimum") {
		t.Fatalf("missing optimum lines in output:\n%s", stdout)
	}
}

func TestRunUnknownWorkloadExitsNonZero(t *testing.T) {
	code, _, stderr := runCLI(t, []string{"-workload", "no-such-workload"})
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(stderr, "unknown workload") {
		t.Fatalf("stderr missing diagnosis:\n%s", stderr)
	}
}

func TestRunBadFlagExitsTwo(t *testing.T) {
	code, _, _ := runCLI(t, []string{"-definitely-not-a-flag"})
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

// TestRunWarmCacheByteIdentical runs the same sweep twice against one
// cache directory: the second run must serve every design point from
// the cache and print byte-identical results.
func TestRunWarmCacheByteIdentical(t *testing.T) {
	dir := t.TempDir()
	args := fastArgs("-cache-dir", dir)

	code, out1, err1 := runCLI(t, args)
	if code != 0 {
		t.Fatalf("cold run exit %d, stderr:\n%s", code, err1)
	}
	if !strings.Contains(err1, "hits=0 misses=5") {
		t.Fatalf("cold run cache summary unexpected:\n%s", err1)
	}

	code, out2, err2 := runCLI(t, args)
	if code != 0 {
		t.Fatalf("warm run exit %d, stderr:\n%s", code, err2)
	}
	if out1 != out2 {
		t.Fatalf("warm-cache output differs from cold run:\n--- cold ---\n%s\n--- warm ---\n%s", out1, out2)
	}
	if !strings.Contains(err2, "hits=5 misses=0") || !strings.Contains(err2, "hit_rate=100%") {
		t.Fatalf("warm run cache summary unexpected:\n%s", err2)
	}
}

// TestRunProfileDir is the cost-attribution acceptance check: one
// -profile-dir run must leave pprof captures, a hot-function summary,
// and a span trace whose per-point phase durations are consistent —
// each point's phases sum to no more than the point span itself
// (within clock tolerance), and the points nest under one workload
// span covering them all.
func TestRunProfileDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "prof")
	benchPath := filepath.Join(t.TempDir(), "BENCH_sweep.json")
	code, _, stderr := runCLI(t, fastArgs("-profile-dir", dir, "-bench-out", benchPath))
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	for _, name := range []string{"cpu.pprof", "heap.pprof", "allocs.pprof", "summary.json", "spans.jsonl", "spans_trace.json"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing artifact: %v", err)
		}
	}

	data, err := os.ReadFile(filepath.Join(dir, "spans.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	type line struct {
		Type    string  `json:"type"`
		ID      uint64  `json:"id"`
		Parent  uint64  `json:"parent"`
		Name    string  `json:"name"`
		StartUS float64 `json:"start_us"`
		DurUS   float64 `json:"dur_us"`
	}
	var spans []line
	for i, raw := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var l line
		if err := json.Unmarshal([]byte(raw), &l); err != nil {
			t.Fatalf("line %d: %v", i+1, err)
		}
		if i == 0 {
			if l.Type != "manifest" {
				t.Fatalf("first line type %q, want manifest", l.Type)
			}
			continue
		}
		spans = append(spans, l)
	}
	const tolUS = 2000 // monotonic-clock and bookkeeping tolerance
	byID := map[uint64]line{}
	kidSums := map[uint64]float64{}
	var points, fits int
	for _, s := range spans {
		byID[s.ID] = s
	}
	for _, s := range spans {
		kidSums[s.Parent] += s.DurUS
		switch s.Name {
		case "point":
			points++
		case "fit":
			fits++
		}
	}
	if points != 5 || fits != 1 { // depths 4..8 from fastArgs
		t.Fatalf("span census: %d points, %d fits (want 5, 1)", points, fits)
	}
	for id, sum := range kidSums {
		parent, ok := byID[id]
		if !ok {
			continue // children of the root have parent 0
		}
		if sum > parent.DurUS+tolUS {
			t.Errorf("span %s#%d: children sum to %.0fµs, span only %.0fµs",
				parent.Name, id, sum, parent.DurUS)
		}
	}

	// The bench record carries the span-phase quantiles.
	recs, err := bench.Load(benchPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("bench records = %d, want 1", len(recs))
	}
	for _, ph := range []string{"simulate", "power", "fit"} {
		p, ok := recs[0].Phases[ph]
		if !ok || p.Count == 0 {
			t.Errorf("bench record missing span phase %q: %+v", ph, recs[0].Phases)
		}
	}
}

// TestRunCacheReadonlyAndClear: -cache-readonly must not populate the
// cache; -cache-clear must force re-simulation.
func TestRunCacheReadonlyAndClear(t *testing.T) {
	dir := t.TempDir()

	_, _, stderr := runCLI(t, fastArgs("-cache-dir", dir, "-cache-readonly"))
	if !strings.Contains(stderr, "stored=0") {
		t.Fatalf("readonly run stored entries:\n%s", stderr)
	}

	// Populate, then clear: the cleared run must miss everything again.
	if code, _, _ := runCLI(t, fastArgs("-cache-dir", dir)); code != 0 {
		t.Fatal("populate run failed")
	}
	_, _, stderr = runCLI(t, fastArgs("-cache-dir", dir, "-cache-clear"))
	if !strings.Contains(stderr, "hits=0 misses=5") {
		t.Fatalf("cleared cache still produced hits:\n%s", stderr)
	}
}

// TestRunSharedSpecValidation drives the flag combinations that the
// shared study-spec rules (internal/serve/spec — the same validation
// depthd applies to submitted studies) must reject.
func TestRunSharedSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"depth below simulable range", []string{"-workload", "si95-gcc", "-min", "1", "-max", "8"}, "depth"},
		{"depth above simulable range", []string{"-workload", "si95-gcc", "-min", "4", "-max", "99"}, "depth"},
		{"inverted depth range", []string{"-workload", "si95-gcc", "-min", "20", "-max", "4"}, "depth"},
		{"unknown machine preset", []string{"-workload", "si95-gcc", "-machine", "quantum"}, "machine"},
		{"instructions beyond trace cap", []string{"-workload", "si95-gcc", "-n", "6000000"}, "instructions"},
		{"bad warmup", []string{"-workload", "si95-gcc", "-warmup", "-7"}, "warmup"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runCLI(t, tc.args)
			if code != 1 {
				t.Fatalf("exit = %d, want 1; stderr:\n%s", code, stderr)
			}
			if tc.want != "" && !strings.Contains(stderr, tc.want) {
				t.Fatalf("stderr missing %q:\n%s", tc.want, stderr)
			}
		})
	}
}
