package main

import (
	"bytes"
	"strings"
	"testing"
)

// fastArgs keeps CLI tests quick: few depths, short seeded runs.
func fastArgs(extra ...string) []string {
	args := []string{
		"-workload", "si95-gcc",
		"-min", "4", "-max", "8",
		"-n", "2000", "-warmup", "-1",
	}
	return append(args, extra...)
}

func runCLI(t *testing.T, args []string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code = run(args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

func TestRunSucceeds(t *testing.T) {
	code, stdout, stderr := runCLI(t, fastArgs())
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "workload si95-gcc") {
		t.Fatalf("missing header in output:\n%s", stdout)
	}
	if !strings.Contains(stdout, "optimum") {
		t.Fatalf("missing optimum lines in output:\n%s", stdout)
	}
}

func TestRunUnknownWorkloadExitsNonZero(t *testing.T) {
	code, _, stderr := runCLI(t, []string{"-workload", "no-such-workload"})
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(stderr, "unknown workload") {
		t.Fatalf("stderr missing diagnosis:\n%s", stderr)
	}
}

func TestRunBadFlagExitsTwo(t *testing.T) {
	code, _, _ := runCLI(t, []string{"-definitely-not-a-flag"})
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
}

// TestRunWarmCacheByteIdentical runs the same sweep twice against one
// cache directory: the second run must serve every design point from
// the cache and print byte-identical results.
func TestRunWarmCacheByteIdentical(t *testing.T) {
	dir := t.TempDir()
	args := fastArgs("-cache-dir", dir)

	code, out1, err1 := runCLI(t, args)
	if code != 0 {
		t.Fatalf("cold run exit %d, stderr:\n%s", code, err1)
	}
	if !strings.Contains(err1, "hits=0 misses=5") {
		t.Fatalf("cold run cache summary unexpected:\n%s", err1)
	}

	code, out2, err2 := runCLI(t, args)
	if code != 0 {
		t.Fatalf("warm run exit %d, stderr:\n%s", code, err2)
	}
	if out1 != out2 {
		t.Fatalf("warm-cache output differs from cold run:\n--- cold ---\n%s\n--- warm ---\n%s", out1, out2)
	}
	if !strings.Contains(err2, "hits=5 misses=0") || !strings.Contains(err2, "hit_rate=100%") {
		t.Fatalf("warm run cache summary unexpected:\n%s", err2)
	}
}

// TestRunCacheReadonlyAndClear: -cache-readonly must not populate the
// cache; -cache-clear must force re-simulation.
func TestRunCacheReadonlyAndClear(t *testing.T) {
	dir := t.TempDir()

	_, _, stderr := runCLI(t, fastArgs("-cache-dir", dir, "-cache-readonly"))
	if !strings.Contains(stderr, "stored=0") {
		t.Fatalf("readonly run stored entries:\n%s", stderr)
	}

	// Populate, then clear: the cleared run must miss everything again.
	if code, _, _ := runCLI(t, fastArgs("-cache-dir", dir)); code != 0 {
		t.Fatal("populate run failed")
	}
	_, _, stderr = runCLI(t, fastArgs("-cache-dir", dir, "-cache-clear"))
	if !strings.Contains(stderr, "hits=0 misses=5") {
		t.Fatalf("cleared cache still produced hits:\n%s", stderr)
	}
}
