package main

// The go vet -vettool protocol (the x/tools "unitchecker" wire format,
// reimplemented on the standard library): the go command probes the
// tool with -V=full (version for the build cache key) and -flags
// (supported analyzer flags, JSON), then invokes it once per package
// with a single *.cfg argument describing the unit: file list, import
// map, and compiled export data of every dependency.
//
// Type information comes from the export data via the stdlib gc
// importer where possible; any import that fails to resolve that way
// falls back to type-checking the dependency from source. Facts are
// not implemented (none of the suite's analyzers are inter-package),
// so the facts output is written empty.

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
)

// vetConfig mirrors the fields of the go command's vet config file
// that the suite needs.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetProtocol handles the go vet invocation shapes. It reports
// handled=false for a normal standalone command line.
func vetProtocol(args []string, stdout, stderr io.Writer) (code int, handled bool) {
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full":
			// The go command hashes this line into its build cache key.
			fmt.Fprintln(stdout, "repolint version repro-v1")
			return 0, true
		case a == "-flags" || a == "--flags":
			// No analyzer flags are exposed through vet.
			fmt.Fprintln(stdout, "[]")
			return 0, true
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return runVetUnit(args[0], stdout, stderr), true
	}
	return 0, false
}

// runVetUnit analyzes the single package unit described by cfgPath.
func runVetUnit(cfgPath string, stdout, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(stderr, "repolint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "repolint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// Always leave a facts file behind: the go command caches it and
	// treats a missing output as a tool failure.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(stderr, "repolint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintln(stderr, "repolint:", err)
			return 1
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: newVetImporter(fset, &cfg),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	pkgTypes, _ := conf.Check(cfg.ImportPath, fset, files, info)
	if len(typeErrs) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		for _, e := range typeErrs {
			fmt.Fprintf(stderr, "repolint: %s: type error: %v\n", cfg.ImportPath, e)
		}
	}

	pkg := &analysis.Package{
		ImportPath: cfg.ImportPath,
		Dir:        cfg.Dir,
		Fset:       fset,
		Files:      files,
		Types:      pkgTypes,
		Info:       info,
	}
	diags, err := analysis.RunAnalyzers([]*analysis.Package{pkg}, suite)
	if err != nil {
		fmt.Fprintln(stderr, "repolint:", err)
		return 1
	}
	reported := 0
	for _, d := range diags {
		// Vet units fold _test.go files into the package; the suite's
		// invariants target non-test code (tests use exact comparison
		// and seeded math/rand on purpose), matching standalone mode,
		// which never loads test files.
		if strings.HasSuffix(d.Pos.Filename, "_test.go") {
			continue
		}
		// go vet surfaces stderr lines as the tool's findings.
		fmt.Fprintf(stderr, "%s: %s\n", d.Pos, d.Message)
		reported++
	}
	if reported > 0 {
		return 2
	}
	return 0
}

// vetImporter resolves imports from the vet unit's compiled export
// data, falling back to source type-checking through the module-aware
// loader for anything the gc importer cannot read.
type vetImporter struct {
	fset *token.FileSet
	cfg  *vetConfig
	gc   types.ImporterFrom
	pkgs map[string]*types.Package

	srcOnce  bool
	srcFail  error
	srcLoad  *analysis.Loader
	unitsDir string
}

func newVetImporter(fset *token.FileSet, cfg *vetConfig) *vetImporter {
	imp := &vetImporter{fset: fset, cfg: cfg, pkgs: make(map[string]*types.Package)}
	lookup := func(path string) (io.ReadCloser, error) {
		mapped := path
		if m, ok := cfg.ImportMap[path]; ok {
			mapped = m
		}
		file, ok := cfg.PackageFile[mapped]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	imp.gc, _ = importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)
	if cfg.Dir != "" {
		imp.unitsDir = cfg.Dir
	} else {
		imp.unitsDir, _ = os.Getwd()
	}
	return imp
}

func (i *vetImporter) Import(path string) (*types.Package, error) {
	if pkg := i.pkgs[path]; pkg != nil {
		return pkg, nil
	}
	if i.gc != nil {
		if pkg, err := i.gc.ImportFrom(path, i.unitsDir, 0); err == nil {
			i.pkgs[path] = pkg
			return pkg, nil
		}
	}
	// Fallback: type-check the dependency from source, module-aware.
	if !i.srcOnce {
		i.srcOnce = true
		i.srcLoad, i.srcFail = analysis.NewLoader(i.unitsDir)
	}
	if i.srcFail != nil {
		return nil, i.srcFail
	}
	return i.srcLoad.ImportSource(path)
}
