// Command repolint runs the repository's static-analysis suite: the
// machine-checked determinism, fingerprint-completeness and metric-
// naming invariants the reproduction's results depend on (see
// internal/analysis and the README's Static analysis section).
//
// Standalone:
//
//	repolint ./...                 # whole module
//	repolint ./internal/pipeline   # one package
//	repolint -list                 # describe the analyzers
//
// As a go vet tool (the unitchecker protocol):
//
//	go build -o /tmp/repolint ./cmd/repolint
//	go vet -vettool=/tmp/repolint ./...
//
// Exit status: 0 clean, 1 findings reported, 2 usage or load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/allocfree"
	"repro/internal/analysis/detrange"
	"repro/internal/analysis/floatcmp"
	"repro/internal/analysis/fpcomplete"
	"repro/internal/analysis/golifecycle"
	"repro/internal/analysis/lockguard"
	"repro/internal/analysis/metriclabel"
)

// suite is the full analyzer set, in reporting order.
var suite = []*analysis.Analyzer{
	allocfree.Analyzer,
	detrange.Analyzer,
	floatcmp.Analyzer,
	fpcomplete.Analyzer,
	golifecycle.Analyzer,
	lockguard.Analyzer,
	metriclabel.Analyzer,
}

// jsonFinding is the machine-readable form of one diagnostic, emitted
// by -json so CI can archive findings as an artifact.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	// The go vet protocol probes and the per-package .cfg invocation
	// are dispatched before normal flag parsing (vet controls that
	// command line, not the user).
	if code, handled := vetProtocol(args, stdout, stderr); handled {
		return code
	}

	fs := flag.NewFlagSet("repolint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	asJSON := fs.Bool("json", false, "emit findings as a JSON array on stdout instead of text")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: repolint [flags] [packages]\n\n"+
			"Runs the repository static-analysis suite over the package patterns\n"+
			"(default ./...). Patterns are directories, optionally /... suffixed.\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(stderr, "repolint:", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "repolint:", err)
		return 2
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "repolint:", err)
		return 2
	}
	pkgs, err := loader.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "repolint:", err)
		return 2
	}
	if len(pkgs) == 0 {
		fmt.Fprintln(stderr, "repolint: no packages matched")
		return 2
	}
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			fmt.Fprintf(stderr, "repolint: %s: type error: %v\n", p.ImportPath, terr)
		}
	}
	diags, err := analysis.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "repolint:", err)
		return 2
	}
	if *asJSON {
		findings := make([]jsonFinding, 0, len(diags))
		for _, d := range diags {
			findings = append(findings, jsonFinding{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(stderr, "repolint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "repolint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}

// selectAnalyzers resolves the -only list against the suite.
func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return suite, nil
	}
	byName := make(map[string]*analysis.Analyzer)
	for _, a := range suite {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		a := byName[strings.TrimSpace(name)]
		if a == nil {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}
