package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// write places a single-file package in its own directory under root.
func write(t *testing.T, root, rel, src string) string {
	t.Helper()
	dir := filepath.Join(root, rel)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestRunExitCodes(t *testing.T) {
	root := t.TempDir()
	clean := write(t, root, "clean", `package clean

func Sum(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}
`)
	dirty := write(t, root, "dirty", `package dirty

func Sum(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v
	}
	return total
}
`)

	tests := []struct {
		name string
		args []string
		want int
	}{
		{"clean package", []string{clean}, 0},
		{"nondeterministic accumulation", []string{dirty}, 1},
		{"both packages", []string{clean, dirty}, 1},
		{"only floatcmp stays quiet", []string{"-only", "floatcmp", dirty}, 0},
		{"unknown analyzer", []string{"-only", "nosuch", dirty}, 2},
		{"bad flag", []string{"-definitely-not-a-flag"}, 2},
		{"missing directory", []string{filepath.Join(root, "absent")}, 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if got := run(tt.args, &stdout, &stderr); got != tt.want {
				t.Fatalf("run(%q) = %d, want %d\nstdout:\n%s\nstderr:\n%s",
					tt.args, got, tt.want, stdout.String(), stderr.String())
			}
		})
	}
}

func TestRunFindingOutput(t *testing.T) {
	root := t.TempDir()
	dirty := write(t, root, "dirty", `package dirty

func Sum(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v
	}
	return total
}
`)
	var stdout, stderr bytes.Buffer
	if got := run([]string{dirty}, &stdout, &stderr); got != 1 {
		t.Fatalf("run = %d, want 1\nstderr:\n%s", got, stderr.String())
	}
	if !strings.Contains(stdout.String(), "detrange") {
		t.Errorf("stdout missing analyzer name:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "1 finding(s)") {
		t.Errorf("stderr missing summary:\n%s", stderr.String())
	}
}

func TestRunJSONOutput(t *testing.T) {
	root := t.TempDir()
	clean := write(t, root, "clean", `package clean

func Double(x int) int { return 2 * x }
`)
	dirty := write(t, root, "dirty", `package dirty

func Sum(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v
	}
	return total
}
`)

	var stdout, stderr bytes.Buffer
	if got := run([]string{"-json", dirty}, &stdout, &stderr); got != 1 {
		t.Fatalf("run(-json dirty) = %d, want 1\nstderr:\n%s", got, stderr.String())
	}
	var findings []jsonFinding
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil {
		t.Fatalf("stdout is not a JSON findings array: %v\n%s", err, stdout.String())
	}
	if len(findings) == 0 {
		t.Fatal("JSON output has no findings for the dirty package")
	}
	f := findings[0]
	if f.Analyzer != "detrange" || f.File == "" || f.Line == 0 || f.Message == "" {
		t.Errorf("finding fields incomplete: %+v", f)
	}

	stdout.Reset()
	stderr.Reset()
	if got := run([]string{"-json", clean}, &stdout, &stderr); got != 0 {
		t.Fatalf("run(-json clean) = %d, want 0\nstderr:\n%s", got, stderr.String())
	}
	if s := strings.TrimSpace(stdout.String()); s != "[]" {
		t.Errorf("clean -json output = %q, want []", s)
	}
}

func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-list"}, &stdout, &stderr); got != 0 {
		t.Fatalf("run(-list) = %d, want 0\nstderr:\n%s", got, stderr.String())
	}
	for _, a := range suite {
		if !strings.Contains(stdout.String(), a.Name) {
			t.Errorf("-list output missing %q:\n%s", a.Name, stdout.String())
		}
	}
}

func TestVetProtocolProbes(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-V=full"}, &stdout, &stderr); got != 0 {
		t.Fatalf("run(-V=full) = %d, want 0", got)
	}
	if !strings.HasPrefix(stdout.String(), "repolint version ") {
		t.Errorf("-V=full output %q lacks the version prefix go vet hashes", stdout.String())
	}

	stdout.Reset()
	if got := run([]string{"-flags"}, &stdout, &stderr); got != 0 {
		t.Fatalf("run(-flags) = %d, want 0", got)
	}
	if strings.TrimSpace(stdout.String()) != "[]" {
		t.Errorf("-flags output = %q, want []", stdout.String())
	}
}
