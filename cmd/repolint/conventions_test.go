package main

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// markerRe matches a lint directive at the start of a comment line:
// //lint:ignore or //lint:hotpath, capturing the verb and the rest.
var markerRe = regexp.MustCompile(`^\s*//lint:(ignore|hotpath)\b[ \t]*(.*)$`)

// TestLintMarkerConventions sweeps every non-test production file for
// lint directives and rejects stale or lazy ones: an ignore must name
// only real analyzers and give a reason; a hotpath marker must give a
// reason. Golden testdata and tests are exempt (they exist to exercise
// malformed markers).
func TestLintMarkerConventions(t *testing.T) {
	names := map[string]bool{}
	for _, a := range suite {
		names[a.Name] = true
	}

	root := moduleRoot(t)
	var checked int
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case "testdata", ".git":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(root, path)
		for i, line := range strings.Split(string(data), "\n") {
			m := markerRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			checked++
			verb, rest := m[1], strings.TrimSpace(m[2])
			switch verb {
			case "ignore":
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					t.Errorf("%s:%d: //lint:ignore needs an analyzer list and a reason, got %q", rel, i+1, rest)
					continue
				}
				for _, name := range strings.Split(fields[0], ",") {
					if !names[name] {
						t.Errorf("%s:%d: //lint:ignore names unknown analyzer %q (known: %d in suite)", rel, i+1, name, len(suite))
					}
				}
			case "hotpath":
				if rest == "" {
					t.Errorf("%s:%d: //lint:hotpath needs a reason (why this function is per-cycle)", rel, i+1)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if checked == 0 {
		t.Fatal("no lint markers found in the repo; the sweep is broken (sim.go alone carries many)")
	}
	t.Logf("checked %d lint markers", checked)
}

// moduleRoot walks up from the package directory to go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test directory")
		}
		dir = parent
	}
}
