// Quickstart: the shortest path through the library. It answers the
// paper's question for one workload — "how deep should the pipeline be
// under BIPS^m/W?" — first with the closed-form theory alone, then
// with the cycle-accurate simulator, and prints both.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/theory"
	"repro/internal/workload"
)

func main() {
	// 1. Pure theory: the paper's analytical model with its default
	// technology (t_p = 140 FO4, t_o = 2.5 FO4) and a representative
	// workload parameterization.
	fmt.Println("Analytical model (Hartstein–Puzak 2003):")
	base := theory.Default()
	for _, m := range []float64{1, 2, 3} {
		p := base.WithMetricExponent(m)
		opt := p.OptimumExact()
		if opt.AtMin {
			fmt.Printf("  BIPS^%.0f/W: no pipelined optimum — single-stage design wins\n", m)
			continue
		}
		fmt.Printf("  BIPS^%.0f/W: optimum %.1f stages (%.1f FO4 per stage)\n",
			m, opt.Depth, opt.FO4)
	}
	perf := base.PerfOnlyOptimum()
	fmt.Printf("  performance only (Eq. 2): optimum %.1f stages (%.1f FO4)\n\n",
		perf, base.CycleTime(perf))

	// 2. Simulation: sweep a SPECint workload over pipeline depths on
	// the 4-issue in-order machine and locate the optimum the way the
	// paper does (cubic least-squares fit of the metric curve).
	prof := workload.Representative(workload.SPECInt)
	fmt.Printf("Simulating %s (%s) across depths 2–25...\n", prof.Name, prof.Class)
	sweep, err := core.RunSweep(core.StudyConfig{Instructions: 20000}, prof)
	if err != nil {
		log.Fatal(err)
	}
	for _, kind := range []metrics.Kind{metrics.BIPS, metrics.BIPS3PerWatt, metrics.BIPSPerWatt} {
		opt, err := sweep.FindOptimum(kind, true)
		if err != nil {
			log.Fatal(err)
		}
		where := fmt.Sprintf("%.1f stages (%.1f FO4)", opt.Depth, opt.FO4)
		if !opt.Interior {
			where += " [at range edge]"
		}
		fmt.Printf("  %-9s optimum: %s\n", kind, where)
	}

	// 3. Close the loop: extract the theory parameters from the
	// simulation and compare the analytic optimum.
	tp, err := sweep.FittedTheoryParams(core.DefaultRefDepth, 3, true)
	if err != nil {
		log.Fatal(err)
	}
	opt := tp.OptimumExact()
	fmt.Printf("\nTheory fitted to this simulation: α=%.2f γ'=%.4f → BIPS^3/W optimum %.1f stages\n",
		tp.Alpha, tp.GammaPrime(), opt.Depth)
	fmt.Println("(The paper's headline: optimizing BIPS^3/W favours ≈7-stage, 22.5 FO4 pipelines,")
	fmt.Println(" far shallower than the ≈20-stage performance-only optimum.)")
}
