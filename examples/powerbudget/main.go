// Powerbudget demonstrates the paper's *other* design strategy (§1):
// "design for the best possible performance, subject to the constraint
// that the power be just below some maximum value, which can be
// effectively dissipated by the packaging environment" — and compares
// it with the BIPS³/W metric optimum on both the analytical model and
// the simulator, including a power-over-time trace at the chosen
// design point.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/power"
	"repro/internal/theory"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	// 1. Theory: sweep the power budget and read off the frontier.
	p := theory.Default()
	ref := p.TotalPower(7)
	fmt.Println("Power-constrained frontier (theory, budgets relative to the 7-stage design):")
	for _, mult := range []float64{0.5, 1, 2, 4, 8} {
		pt, ok := p.ConstrainedOptimum(ref * mult)
		if !ok {
			fmt.Printf("  %4.1f× budget: infeasible\n", mult)
			continue
		}
		fmt.Printf("  %4.1f× budget: %5.1f stages (%5.1f FO4), BIPS %.4f\n",
			mult, pt.Depth, pt.FO4, pt.Metric)
	}
	m3 := p.OptimumExact()
	fmt.Printf("BIPS^3/W metric optimum for comparison: %.1f stages\n\n", m3.Depth)

	// 2. Simulation: sweep a modern workload, then pick the deepest
	// design whose simulated gated power fits a budget set at 1.5× the
	// metric optimum's draw.
	prof := workload.Representative(workload.Modern)
	fmt.Printf("Simulating %s across depths...\n", prof.Name)
	sweep, err := core.RunSweep(core.StudyConfig{Instructions: 15000}, prof)
	if err != nil {
		log.Fatal(err)
	}
	opt, err := sweep.FindOptimum(metrics.BIPS3PerWatt, true)
	if err != nil {
		log.Fatal(err)
	}
	optPoint, _ := sweep.PointAt(int(opt.Depth + 0.5))
	budget := optPoint.GatedPower.Total() * 1.5
	var best core.DepthPoint
	bestBIPS, found := 0.0, false
	for _, pt := range sweep.Points {
		if pt.GatedPower.Total() <= budget && pt.Result.BIPS() > bestBIPS {
			best, bestBIPS, found = pt, pt.Result.BIPS(), true
		}
	}
	fmt.Printf("metric optimum: %.1f stages drawing %.3g W-units\n",
		opt.Depth, optPoint.GatedPower.Total())
	if !found {
		log.Fatal("no feasible design under the budget")
	}
	fmt.Printf("budget %.3g (1.5×): best feasible design %d stages, BIPS %.5f (vs %.5f at the metric optimum)\n\n",
		budget, best.Depth, bestBIPS, optPoint.Result.BIPS())

	// 3. Power trace at the chosen design point: the paper's monitor
	// collects usage "every cycle"; here, per 500-cycle interval.
	gen, err := workload.NewGenerator(prof)
	if err != nil {
		log.Fatal(err)
	}
	cfg := pipeline.MustDefaultConfig(best.Depth)
	cfg.SampleInterval = 500
	res, err := pipeline.Run(cfg, trace.NewLimitStream(gen, 6000))
	if err != nil {
		log.Fatal(err)
	}
	pm := power.DefaultModel()
	fmt.Printf("gated power over time at %d stages (interval = 500 cycles):\n", best.Depth)
	for i, b := range pm.PowerTrace(res, true) {
		bar := int(b.Total() / budget * 40)
		if bar > 60 {
			bar = 60
		}
		fmt.Printf("  %6d %8.3g |%s\n", res.Samples[i].Cycle, b.Total(), bars(bar))
	}
}

func bars(n int) string {
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
