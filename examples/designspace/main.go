// Designspace explores how the optimum pipeline depth moves across the
// technology design space — the paper's §5 sensitivity studies — using
// the analytical model: leakage fraction × latch-growth exponent ×
// clock gating, plus the metric-exponent dimension. No simulation is
// needed; this is the "predict the correct design point when new
// technologies arise" use case the paper advertises for its theory.
package main

import (
	"fmt"

	"repro/internal/theory"
)

func main() {
	base := theory.Default()

	fmt.Println("Optimum pipeline depth (stages) as leakage and latch growth vary")
	fmt.Println("metric: BIPS^3/W, non-gated dynamic power")
	fmt.Println()
	leakages := []float64{0, 0.15, 0.30, 0.50, 0.70, 0.90}
	betas := []float64{1.0, 1.1, 1.3, 1.5, 1.8, 2.1}

	fmt.Printf("%10s", "leak\\beta")
	for _, b := range betas {
		fmt.Printf("%8.1f", b)
	}
	fmt.Println()
	for _, l := range leakages {
		fmt.Printf("%9.0f%%", l*100)
		for _, b := range betas {
			p := base.WithBeta(b).WithLeakageFraction(l, theory.DefaultLeakageRefDepth)
			opt := p.OptimumExact()
			if opt.AtMin {
				fmt.Printf("%8s", "1*")
			} else {
				fmt.Printf("%8.1f", opt.Depth)
			}
		}
		fmt.Println()
	}
	fmt.Println("(* single-stage design: no pipelined optimum)")
	fmt.Println()

	fmt.Println("Clock gating pushes the optimum deeper at every leakage level:")
	for _, l := range []float64{0.05, 0.15, 0.30} {
		ng := base.WithLeakageFraction(l, theory.DefaultLeakageRefDepth).OptimumExact()
		g := base.WithClockGating(1).
			WithLeakageFraction(l, theory.DefaultLeakageRefDepth).OptimumExact()
		fmt.Printf("  leakage %3.0f%%: non-gated %.1f stages → gated %.1f stages\n",
			l*100, ng.Depth, g.Depth)
	}
	fmt.Println()

	fmt.Println("Partial clock gating (fractional f_cg) interpolates:")
	for _, fcg := range []float64{1.0, 0.7, 0.4, 0.2} {
		p := base.WithoutClockGating(fcg)
		fmt.Printf("  f_cg = %.1f: optimum %.1f stages\n", fcg, p.OptimumExact().Depth)
	}
	fmt.Println()

	fmt.Println("Metric exponent m sweeps from power-dominated to performance-only:")
	for _, m := range []float64{1, 2, 2.5, 3, 4, 6, 10} {
		p := base.WithMetricExponent(m)
		opt := p.OptimumExact()
		if opt.AtMin {
			fmt.Printf("  m = %4.1f: single-stage design\n", m)
			continue
		}
		fmt.Printf("  m = %4.1f: optimum %.1f stages (%.1f FO4)\n", m, opt.Depth, opt.FO4)
	}
	fmt.Printf("  m → ∞  : performance-only optimum %.1f stages (Eq. 2)\n", base.PerfOnlyOptimum())
	fmt.Printf("\nexistence threshold: pipelined optima require m > %.2f here\n",
		base.MExistenceThreshold())
}
