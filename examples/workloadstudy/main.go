// Workloadstudy reruns the paper's workload-population study (Figures
// 6 and 7): it sweeps the whole 55-trace catalog across pipeline
// depths, finds each workload's clock-gated BIPS^3/W optimum by the
// paper's cubic-fit method, and prints the distribution overall and by
// class, as ASCII histograms.
//
// Flags: -n <instructions per run> -workloads <cap> for quicker runs.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/workload"
)

func main() {
	n := flag.Int("n", 15000, "instructions per simulation run")
	cap := flag.Int("workloads", 0, "limit the number of workloads (0 = all 55)")
	flag.Parse()

	profs := workload.All()
	if *cap > 0 && *cap < len(profs) {
		profs = profs[:*cap]
	}
	fmt.Printf("Sweeping %d workloads over depths 2–25 (%d instructions each)...\n\n",
		len(profs), *n)

	sweeps, err := core.RunCatalog(core.StudyConfig{Instructions: *n}, profs)
	if err != nil {
		log.Fatal(err)
	}
	var optima []core.Optimum
	for _, s := range sweeps {
		o, err := s.FindOptimum(metrics.BIPS3PerWatt, true)
		if err != nil {
			log.Fatal(err)
		}
		optima = append(optima, o)
	}

	fmt.Println("All workloads (Figure 6):")
	printHistogram(optima)
	mean := core.MeanDepth(optima)
	fmt.Printf("mean %.1f stages = %.1f FO4 per stage (paper: ≈8 stages, 20 FO4)\n\n",
		mean, 2.5+140/mean)

	fmt.Println("By class (Figure 7):")
	byClass := core.ByClass(optima)
	classes := make([]workload.Class, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	for _, c := range classes {
		opts := byClass[c]
		m := core.MeanDepth(opts)
		fmt.Printf("\n%s (%d workloads, mean %.1f stages / %.1f FO4):\n",
			c, len(opts), m, 2.5+140/m)
		printHistogram(opts)
	}

	fmt.Println("\nPer-workload detail:")
	sorted := append([]core.Optimum(nil), optima...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Depth < sorted[j].Depth })
	for _, o := range sorted {
		fmt.Printf("  %-16s %-8s %5.1f stages (%5.1f FO4)\n",
			o.Workload, o.Class, o.Depth, o.FO4)
	}
}

func printHistogram(opts []core.Optimum) {
	bins := core.Histogram(opts, 2, 25)
	for i, count := range bins {
		if count == 0 {
			continue
		}
		fmt.Printf("  %2d stages | %s %d\n", i+2, strings.Repeat("#", count), count)
	}
}
