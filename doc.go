// Package repro reproduces Hartstein & Puzak, "Optimum
// Power/Performance Pipeline Depth" (MICRO-36, 2003): the analytical
// BIPS^m/W pipeline-depth model, a cycle-accurate 4-issue in-order
// superscalar simulator with a per-unit power monitor, a 55-workload
// synthetic trace catalog, and a harness that regenerates every figure
// of the paper's evaluation.
//
// The implementation lives under internal/; see README.md for the
// package map, DESIGN.md for the system inventory and per-experiment
// index, and EXPERIMENTS.md for measured-vs-paper results. Entry
// points:
//
//   - internal/theory: the closed-form model (Eqs. 1–8)
//   - internal/pipeline + internal/power: the simulator and its
//     power monitor
//   - internal/core: depth-sweep studies over workloads
//   - internal/experiments: per-figure reproductions
//   - cmd/experiments, cmd/pipesim, cmd/sweep, cmd/tracegen: CLIs
//   - examples/: runnable walkthroughs
//
// The benchmarks in bench_test.go regenerate each figure
// (BenchmarkFig...) and measure the substrate layers.
package repro
